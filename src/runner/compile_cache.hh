/**
 * @file
 * Campaign-wide compile memoization.
 *
 * Grid points that vary only machine parameters (cluster buffers,
 * predictor, trace seed, ...) share one compiled binary: the cache key
 * is the (workload, CompileOptions) pair — benchmark name, workload
 * scale, and CompileOptions::canonicalKey() — so a Table-2 campaign
 * compiles each benchmark once per distinct compile config instead of
 * once per job.
 *
 * Thread-safety: getOrCompile() publishes a shared_future under the
 * map lock before running the builder outside it, so concurrent
 * requests for the same key run exactly one compile and the rest block
 * on the future. A builder that throws poisons its entry (every waiter
 * rethrows), which keeps outcomes deterministic across --jobs widths.
 */

#ifndef MCA_RUNNER_COMPILE_CACHE_HH
#define MCA_RUNNER_COMPILE_CACHE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "compiler/pipeline.hh"

namespace mca::runner
{

struct JobSpec;

class CompileCache
{
  public:
    using Compiled = std::shared_ptr<const compiler::CompileOutput>;
    using Builder = std::function<compiler::CompileOutput()>;

    /**
     * Return the cached output for `key`, or run `build` (exactly once
     * across all threads asking for this key) and cache it. Sets
     * `*hit` (when non-null) to true iff the compile was shared —
     * i.e. this call did not run the builder itself. Rethrows the
     * builder's exception, on the building call and on every waiter.
     */
    Compiled getOrCompile(const std::string &key, const Builder &build,
                          bool *hit = nullptr);

    struct Stats
    {
        std::uint64_t lookups = 0;
        /** Lookups served by someone else's compile. */
        std::uint64_t hits = 0;
        /** Builder invocations == distinct keys seen. */
        std::uint64_t compiles = 0;
    };

    Stats stats() const;

    /**
     * The cache key for one job: workload identity (benchmark, scale)
     * plus the compile-options canonical key. Machine and run-control
     * fields deliberately do not participate.
     */
    static std::string keyFor(const JobSpec &spec,
                              const compiler::CompileOptions &options);

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_future<Compiled>> entries_;
    Stats stats_;
};

} // namespace mca::runner

#endif // MCA_RUNNER_COMPILE_CACHE_HH
