/**
 * @file
 * Campaign job specification and result.
 *
 * A JobSpec names one compile-and-simulate point: workload, compile
 * options, machine, and run-control bounds. Every field that can change
 * the simulation outcome participates in the spec's canonical key, and
 * the 64-bit content hash of that key is the identity the on-disk
 * result cache is keyed by — re-running a sweep only simulates points
 * whose spec changed.
 *
 * Jobs are validated before they run (unknown benchmark / machine /
 * scheduler / predictor names throw std::runtime_error rather than
 * taking down the process), and a job whose simulation exhausts its
 * cycle budget is recorded as TimedOut. Both outcomes are campaign
 * *results*, not campaign failures.
 */

#ifndef MCA_RUNNER_JOBSPEC_HH
#define MCA_RUNNER_JOBSPEC_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hh"
#include "obs/cycle_stack.hh"
#include "support/types.hh"

namespace mca::compiler
{
struct CompileOptions;
}

namespace mca::runner
{

/** One compile-and-simulate point in a campaign. */
struct JobSpec
{
    /** Benchmark name (workloads::allBenchmarks() registry). */
    std::string benchmark = "compress";
    /** Workload scale (loop trip counts). */
    double scale = 0.2;

    /** Machine name: single8|dual8|single4|dual4|quad8|octa8. */
    std::string machine = "dual8";
    /** Scheduler/partitioner name: native|local|roundrobin|multilevel. */
    std::string scheduler = "local";
    /** Local-scheduler imbalance threshold. */
    unsigned threshold = 4;
    /** Unroll factor for counted self-loops (1 = off). */
    unsigned unroll = 1;
    /** Branch predictor override (empty = machine default). */
    std::string predictor;

    // Memory-hierarchy axes (defaults = paper mode; docs/memory.md).
    /** Shared-L2 size in KB; 0 = no L2 (paper mode). */
    unsigned l2Kb = 0;
    /** L1-miss-to-L2-hit latency in cycles. */
    unsigned l2Lat = 6;
    /** Memory backside latency in cycles. */
    unsigned memLat = 16;
    /** Fill ports per memory level; 0 = unlimited (paper mode). */
    unsigned fillPorts = 0;

    // Sampled-simulation axes (docs/sampling.md). samplePeriod = 0
    // runs the full detailed simulation; > 0 switches the job to the
    // systematic sampled driver with this interval period.
    std::uint64_t samplePeriod = 0;
    /** Detailed instructions measured per interval. */
    std::uint64_t sampleDetail = 10'000;
    /** Detailed warmup instructions discarded per interval. */
    std::uint64_t sampleWarmup = 2'000;

    std::uint64_t traceSeed = 42;
    /** Seed for the profiling run (paper harness ties it to traceSeed). */
    std::uint64_t profileSeed = 42;
    std::uint64_t maxInsts = 300'000;
    /**
     * Simulation cycle budget. A run that hits this bound without
     * retiring the full trace is recorded as JobStatus::TimedOut. The
     * budget is deterministic (simulated cycles, not wall clock), so
     * timeout behaviour is identical at any --jobs width.
     */
    Cycle maxCycles = 100'000'000;

    /**
     * Canonical key: every outcome-affecting field in a fixed order.
     * Two specs with equal keys produce bit-identical results.
     */
    std::string canonicalKey() const;

    /** FNV-1a 64-bit hash of canonicalKey(), as 16 lowercase hex digits. */
    std::string contentHash() const;

    /**
     * Throw std::runtime_error naming the offending field and the valid
     * choices if any enumerated field holds an unknown value.
     */
    void validate() const;
};

/** Terminal state of one job. */
enum class JobStatus
{
    Ok,       ///< simulation retired the full trace
    TimedOut, ///< cycle budget exhausted before completion
    Failed,   ///< spec rejected or an exception escaped the pipeline
};

const char *jobStatusName(JobStatus status);

/** Everything one job produced (flat, serializable). */
struct JobResult
{
    JobSpec spec;
    JobStatus status = JobStatus::Failed;
    /** Populated when status == Failed. */
    std::string error;

    // Simulation statistics (valid for Ok; best-effort for TimedOut).
    Cycle cycles = 0;
    std::uint64_t retired = 0;
    double ipc = 0.0;
    std::uint64_t distSingle = 0;
    std::uint64_t distDual = 0;
    std::uint64_t operandForwards = 0;
    std::uint64_t resultForwards = 0;
    std::uint64_t replays = 0;
    std::uint64_t issueDisorder = 0;
    double bpredAccuracy = 0.0;
    double dcacheMissRate = 0.0;
    double icacheMissRate = 0.0;
    /** Shared-L2 local miss rate; 0 when the machine has no L2. */
    double l2MissRate = 0.0;

    // Compiler-side statistics.
    std::uint64_t spillLoads = 0;
    std::uint64_t spillStores = 0;
    std::uint64_t otherClusterSpills = 0;
    /** Affinity edge weight the partition cut (0 for native). */
    std::uint64_t partitionCut = 0;
    /** Heaviest cluster / ideal cluster weight (0 for native). */
    double partitionBalance = 0.0;

    /**
     * Cycle-stack stall attribution: slot-cycles per cause, in
     * obs::StallCause order. stackSlots is the machine's retire width;
     * the entries sum to stackSlots * cycles (conservation).
     */
    std::array<std::uint64_t, obs::kNumStallCauses> stackSlotCycles{};
    unsigned stackSlots = 0;

    // Sampled-run extras (zero/false for full detailed runs). For a
    // sampled job, `cycles` is the extrapolated total (rounded),
    // `retired` is the full trace length, and the cycle stack is the
    // sum over the measured windows only.
    bool sampled = false;
    std::uint64_t sampledIntervals = 0;
    /** 95% CI half-width on the per-interval CPI mean. */
    double cpiCi95 = 0.0;

    /** Wall-clock milliseconds spent (informational; not cached identity). */
    double wallMs = 0.0;
    /** True when this result was served from the on-disk cache. */
    bool fromCache = false;
};

class ArtifactStore;

/**
 * Validate, compile, and simulate one spec. Never throws for
 * invalid-spec or pipeline errors — those come back as status Failed
 * with the message in `error`.
 *
 * With an ArtifactStore, the compile step is memoized on the
 * (workload, compile-config) pair: jobs differing only in machine or
 * run-control fields share one compiled binary (see artifact_store.hh).
 * The task-graph campaign pre-compiles each distinct key in its own
 * node, so by the time runJob asks the store the artifact is ready.
 */
JobResult runJob(const JobSpec &spec, ArtifactStore *store = nullptr);

/**
 * Build the ProcessorConfig a spec names (machine factory + predictor
 * override + memory-hierarchy axes), validated. Throws
 * std::runtime_error on unknown names or inconsistent geometry; mcarun
 * uses this at parse time to fail fast before any job runs.
 */
core::ProcessorConfig machineConfigFor(const JobSpec &spec);

/**
 * The compile configuration a spec names: the scheduler's base options
 * with the spec's threshold/unroll/profile-seed applied. The campaign
 * uses this (with machineConfigFor) to key compile artifacts before
 * any job runs.
 */
compiler::CompileOptions jobCompileOptions(const JobSpec &spec,
                                           unsigned machine_clusters);

/** Valid choices for the enumerated spec fields (for CLI help/errors). */
const std::vector<std::string> &validMachines();
const std::vector<std::string> &validSchedulers();
const std::vector<std::string> &validPredictors();
const std::vector<std::string> &validBenchmarks();

} // namespace mca::runner

#endif // MCA_RUNNER_JOBSPEC_HH
