/**
 * @file
 * Content-addressed artifact store: one keyed namespace for everything
 * a campaign produces and might reuse.
 *
 * Historically the runner had two unrelated caches — an on-disk result
 * cache keyed by JobSpec content hash and an in-memory compile cache
 * keyed by (workload, compile-config). This class merges them into one
 * store with typed payloads under a single addressing scheme: every
 * artifact is named by the FNV-1a 64-bit content hash of its canonical
 * key string, and the payload type decides residency.
 *
 *  - **result** artifacts persist on disk, one text file per job at
 *    `<dir>/<hash>.result` holding `name<TAB>value` lines (format v6;
 *    see docs/campaigns.md). The file stores the full canonical key
 *    and loadResult() verifies it against the requesting spec, so a
 *    hash collision degrades to a miss. Writes go through a temporary
 *    + rename, a killed run never leaves a truncated entry, Failed
 *    jobs are never stored (a rerun retries them), and TimedOut jobs
 *    are (the cycle budget is part of the spec). Pre-v6 entries fail
 *    the version check and read as cold — no migration step.
 *
 *  - **compile** artifacts are in-memory and single-flight:
 *    getOrCompile() publishes a shared_future under the lock before
 *    running the builder outside it, so concurrent requests for one
 *    key run exactly one compile and the rest adopt the result. A
 *    builder that throws poisons its entry (every waiter rethrows),
 *    keeping outcomes deterministic across --jobs widths. The
 *    task-graph campaign (campaign.cc) adds one compile node per
 *    distinct key, so under the executor the future is always ready
 *    by the time a simulation job asks for it.
 */

#ifndef MCA_RUNNER_ARTIFACT_STORE_HH
#define MCA_RUNNER_ARTIFACT_STORE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "compiler/pipeline.hh"
#include "runner/jobspec.hh"

namespace mca::runner
{

class ArtifactStore
{
  public:
    using Compiled = std::shared_ptr<const compiler::CompileOutput>;
    using Builder = std::function<compiler::CompileOutput()>;

    /**
     * @param dir  Artifact directory (created on first store). Empty
     *             disables persistence: loadResult() always misses and
     *             storeResult() is a no-op; compile artifacts are
     *             unaffected (they are in-memory).
     */
    explicit ArtifactStore(std::string dir = "");

    /** True when result artifacts persist to disk. */
    bool persistent() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    // --- result payloads ------------------------------------------------

    /** Fetch the stored result for `spec`, if present and key-valid. */
    std::optional<JobResult> loadResult(const JobSpec &spec) const;

    /** Persist one result (Failed results are skipped). */
    void storeResult(const JobResult &result) const;

    /** Path the given spec's artifact lives at (diagnostics/tests). */
    std::string resultPath(const JobSpec &spec) const;

    // --- compile payloads -----------------------------------------------

    /**
     * Return the compiled artifact for `key`, or run `build` (exactly
     * once across all threads asking for this key) and keep it. Sets
     * `*hit` (when non-null) to true iff this call did not run the
     * builder itself. Rethrows the builder's exception, on the
     * building call and on every waiter.
     */
    Compiled getOrCompile(const std::string &key, const Builder &build,
                          bool *hit = nullptr);

    /**
     * The compile-artifact key for one job: workload identity
     * (benchmark, scale) plus the compile-options canonical key.
     * Machine and run-control fields deliberately do not participate,
     * so grid points differing only in machine parameters share one
     * compiled binary.
     */
    static std::string compileKeyFor(const JobSpec &spec,
                                     const compiler::CompileOptions &options);

    struct Stats
    {
        std::uint64_t compileLookups = 0;
        /** Lookups served by someone else's compile. */
        std::uint64_t compileHits = 0;
        /** Builder invocations == distinct compile keys seen. */
        std::uint64_t compiles = 0;
        /** loadResult calls that returned a stored result. */
        std::uint64_t resultHits = 0;
    };

    Stats stats() const;

  private:
    std::string dir_;
    mutable std::mutex mutex_;
    std::map<std::string, std::shared_future<Compiled>> compiled_;
    mutable Stats stats_;
};

} // namespace mca::runner

#endif // MCA_RUNNER_ARTIFACT_STORE_HH
