/**
 * @file
 * Structured campaign-result emitters.
 *
 * JSON lines (one flat object per job, machine-diffable, streamable)
 * and CSV (spreadsheet-ready, one header row). Both formats carry the
 * full spec alongside the measurements so a results file is
 * self-describing — no join against the command line that produced it.
 *
 * ProgressPrinter renders the live `[done/total]` line campaigns show
 * on stderr while running; it is plumbed as CampaignOptions::onResult.
 */

#ifndef MCA_RUNNER_EMIT_HH
#define MCA_RUNNER_EMIT_HH

#include <cstddef>
#include <ostream>
#include <vector>

#include "runner/campaign.hh"
#include "runner/jobspec.hh"

namespace mca::runner
{

/** Write one result as a single-line JSON object (no trailing newline). */
void emitJsonLine(std::ostream &os, const JobResult &result);

/** Write every result, one JSON object per line. */
void emitJsonLines(std::ostream &os, const std::vector<JobResult> &results);

/** Write the CSV header row matching emitCsvRow's columns. */
void emitCsvHeader(std::ostream &os);

/** Write one result as a CSV row. */
void emitCsvRow(std::ostream &os, const JobResult &result);

/** Header + every result. */
void emitCsv(std::ostream &os, const std::vector<JobResult> &results);

/** Human summary line, e.g. "36 jobs: 34 ok, 1 timeout, 1 failed ...". */
void emitSummary(std::ostream &os, const CampaignSummary &summary);

/**
 * Live progress line: overwrites itself with \r while a campaign runs,
 * e.g. `[12/36] ok=10 timeout=1 failed=1 cache=4  compress/dual8/local`.
 * Call finish() before printing anything else to the same stream.
 */
class ProgressPrinter
{
  public:
    /** @param enabled  false turns every call into a no-op (--quiet). */
    explicit ProgressPrinter(std::ostream &os, bool enabled = true);

    /** CampaignOptions::onResult-compatible callback. */
    void operator()(std::size_t finished, std::size_t total,
                    const JobResult &result);

    /** Terminate the progress line with a newline (idempotent). */
    void finish();

  private:
    std::ostream &os_;
    bool enabled_;
    bool dirty_ = false;
    CampaignSummary tally_;
};

} // namespace mca::runner

#endif // MCA_RUNNER_EMIT_HH
