#include "runner/emit.hh"

#include <cstdio>

namespace mca::runner
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    // JSON has no inf/nan literals; the stats never produce them, but
    // degrade to null rather than emit an invalid document if one does.
    for (const char *p = buf; *p; ++p)
        if ((*p >= 'a' && *p <= 'z' && *p != 'e') ||
            (*p >= 'A' && *p <= 'Z' && *p != 'E'))
            return "null";
    return buf;
}

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
emitJsonLine(std::ostream &os, const JobResult &r)
{
    os << "{"
       << "\"hash\":\"" << r.spec.contentHash() << "\""
       << ",\"benchmark\":\"" << jsonEscape(r.spec.benchmark) << "\""
       << ",\"machine\":\"" << jsonEscape(r.spec.machine) << "\""
       << ",\"scheduler\":\"" << jsonEscape(r.spec.scheduler) << "\""
       << ",\"threshold\":" << r.spec.threshold
       << ",\"unroll\":" << r.spec.unroll
       << ",\"predictor\":\"" << jsonEscape(r.spec.predictor) << "\""
       << ",\"scale\":" << jsonDouble(r.spec.scale)
       << ",\"trace_seed\":" << r.spec.traceSeed
       << ",\"profile_seed\":" << r.spec.profileSeed
       << ",\"max_insts\":" << r.spec.maxInsts
       << ",\"max_cycles\":" << r.spec.maxCycles
       << ",\"l2_kb\":" << r.spec.l2Kb
       << ",\"l2_lat\":" << r.spec.l2Lat
       << ",\"mem_lat\":" << r.spec.memLat
       << ",\"fill_ports\":" << r.spec.fillPorts
       << ",\"sample_period\":" << r.spec.samplePeriod
       << ",\"sample_detail\":" << r.spec.sampleDetail
       << ",\"sample_warmup\":" << r.spec.sampleWarmup
       << ",\"status\":\"" << jobStatusName(r.status) << "\""
       << ",\"error\":\"" << jsonEscape(r.error) << "\""
       << ",\"cycles\":" << r.cycles
       << ",\"retired\":" << r.retired
       << ",\"ipc\":" << jsonDouble(r.ipc)
       << ",\"dist_single\":" << r.distSingle
       << ",\"dist_dual\":" << r.distDual
       << ",\"operand_forwards\":" << r.operandForwards
       << ",\"result_forwards\":" << r.resultForwards
       << ",\"replays\":" << r.replays
       << ",\"issue_disorder\":" << r.issueDisorder
       << ",\"bpred_accuracy\":" << jsonDouble(r.bpredAccuracy)
       << ",\"dcache_miss_rate\":" << jsonDouble(r.dcacheMissRate)
       << ",\"icache_miss_rate\":" << jsonDouble(r.icacheMissRate)
       << ",\"l2_miss_rate\":" << jsonDouble(r.l2MissRate)
       << ",\"spill_loads\":" << r.spillLoads
       << ",\"spill_stores\":" << r.spillStores
       << ",\"other_cluster_spills\":" << r.otherClusterSpills
       << ",\"partition_cut\":" << r.partitionCut
       << ",\"partition_balance\":" << jsonDouble(r.partitionBalance)
       << ",\"stack_slots\":" << r.stackSlots;
    for (std::size_t i = 0; i < obs::kNumStallCauses; ++i)
        os << ",\"stack_"
           << obs::stallCauseName(static_cast<obs::StallCause>(i))
           << "\":" << r.stackSlotCycles[i];
    os << ",\"sampled\":" << (r.sampled ? "true" : "false")
       << ",\"sampled_intervals\":" << r.sampledIntervals
       << ",\"cpi_ci95\":" << jsonDouble(r.cpiCi95)
       << ",\"wall_ms\":" << jsonDouble(r.wallMs)
       << ",\"from_cache\":" << (r.fromCache ? "true" : "false")
       << "}";
}

void
emitJsonLines(std::ostream &os, const std::vector<JobResult> &results)
{
    for (const auto &result : results) {
        emitJsonLine(os, result);
        os << "\n";
    }
}

void
emitCsvHeader(std::ostream &os)
{
    os << "hash,benchmark,machine,scheduler,threshold,unroll,predictor,"
          "scale,trace_seed,profile_seed,max_insts,max_cycles,l2_kb,"
          "l2_lat,mem_lat,fill_ports,status,error,cycles,retired,ipc,"
          "dist_single,dist_dual,operand_forwards,result_forwards,"
          "replays,issue_disorder,bpred_accuracy,dcache_miss_rate,"
          "icache_miss_rate,l2_miss_rate,spill_loads,spill_stores,"
          "other_cluster_spills,partition_cut,partition_balance,"
          "stack_slots";
    for (std::size_t i = 0; i < obs::kNumStallCauses; ++i)
        os << ",stack_"
           << obs::stallCauseName(static_cast<obs::StallCause>(i));
    os << ",wall_ms,from_cache\n";
}

void
emitCsvRow(std::ostream &os, const JobResult &r)
{
    os << r.spec.contentHash() << ',' << csvEscape(r.spec.benchmark) << ','
       << csvEscape(r.spec.machine) << ',' << csvEscape(r.spec.scheduler)
       << ',' << r.spec.threshold << ',' << r.spec.unroll << ','
       << csvEscape(r.spec.predictor) << ',' << jsonDouble(r.spec.scale)
       << ',' << r.spec.traceSeed << ',' << r.spec.profileSeed << ','
       << r.spec.maxInsts << ',' << r.spec.maxCycles << ','
       << r.spec.l2Kb << ',' << r.spec.l2Lat << ',' << r.spec.memLat
       << ',' << r.spec.fillPorts << ','
       << jobStatusName(r.status) << ',' << csvEscape(r.error) << ','
       << r.cycles << ',' << r.retired << ',' << jsonDouble(r.ipc) << ','
       << r.distSingle << ',' << r.distDual << ',' << r.operandForwards
       << ',' << r.resultForwards << ',' << r.replays << ','
       << r.issueDisorder << ',' << jsonDouble(r.bpredAccuracy) << ','
       << jsonDouble(r.dcacheMissRate) << ','
       << jsonDouble(r.icacheMissRate) << ','
       << jsonDouble(r.l2MissRate) << ',' << r.spillLoads << ','
       << r.spillStores << ',' << r.otherClusterSpills << ','
       << r.partitionCut << ',' << jsonDouble(r.partitionBalance) << ','
       << r.stackSlots;
    for (std::size_t i = 0; i < obs::kNumStallCauses; ++i)
        os << ',' << r.stackSlotCycles[i];
    os << ',' << jsonDouble(r.wallMs) << ','
       << (r.fromCache ? "true" : "false") << '\n';
}

void
emitCsv(std::ostream &os, const std::vector<JobResult> &results)
{
    emitCsvHeader(os);
    for (const auto &result : results)
        emitCsvRow(os, result);
}

void
emitSummary(std::ostream &os, const CampaignSummary &summary)
{
    char wall[32];
    if (summary.wallMs >= 1000.0)
        std::snprintf(wall, sizeof wall, "%.2f s", summary.wallMs / 1000.0);
    else
        std::snprintf(wall, sizeof wall, "%.1f ms", summary.wallMs);
    os << summary.total << " jobs: " << summary.ok << " ok, "
       << summary.timedOut << " timeout, " << summary.failed
       << " failed (" << summary.fromCache << " from cache) in " << wall;
    if (summary.compiles > 0)
        os << " | compiles: " << summary.compiles << " ("
           << summary.compileHits << " shared)";
    if (summary.jobs > 0) {
        os << " | jobs: " << summary.jobs;
        if (summary.criticalPathMs > 0.0) {
            char cp[32];
            std::snprintf(cp, sizeof cp, "%.1f", summary.criticalPathMs);
            os << ", critical path " << cp << " ms, peak queue "
               << summary.maxQueueDepth;
        }
    }
    os << "\n";
}

ProgressPrinter::ProgressPrinter(std::ostream &os, bool enabled)
    : os_(os), enabled_(enabled)
{
}

void
ProgressPrinter::operator()(std::size_t finished, std::size_t total,
                            const JobResult &result)
{
    if (!enabled_)
        return;
    switch (result.status) {
    case JobStatus::Ok: ++tally_.ok; break;
    case JobStatus::TimedOut: ++tally_.timedOut; break;
    case JobStatus::Failed: ++tally_.failed; break;
    }
    if (result.fromCache)
        ++tally_.fromCache;
    os_ << "\r[" << finished << "/" << total << "] ok=" << tally_.ok
        << " timeout=" << tally_.timedOut << " failed=" << tally_.failed
        << " cache=" << tally_.fromCache << "  " << result.spec.benchmark
        << "/" << result.spec.machine << "/" << result.spec.scheduler
        << "            " << std::flush;
    dirty_ = true;
}

void
ProgressPrinter::finish()
{
    if (dirty_) {
        os_ << "\n";
        dirty_ = false;
    }
}

} // namespace mca::runner
