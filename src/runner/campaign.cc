#include "runner/campaign.hh"

#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "compiler/pipeline.hh"
#include "prof/prof.hh"
#include "taskgraph/taskgraph.hh"
#include "workloads/workloads.hh"

namespace mca::runner
{

std::vector<JobSpec>
expandGrid(const CampaignGrid &grid)
{
    auto requireAxis = [](bool nonempty, const char *axis) {
        if (!nonempty)
            throw std::runtime_error(std::string("campaign grid axis '") +
                                     axis + "' is empty");
    };
    requireAxis(!grid.benchmarks.empty(), "benchmarks");
    requireAxis(!grid.machines.empty(), "machines");
    requireAxis(!grid.schedulers.empty(), "schedulers");
    requireAxis(!grid.thresholds.empty(), "thresholds");
    requireAxis(!grid.traceSeeds.empty(), "traceSeeds");
    requireAxis(!grid.l2Kbs.empty(), "l2Kbs");
    requireAxis(!grid.l2Lats.empty(), "l2Lats");
    requireAxis(!grid.memLats.empty(), "memLats");
    requireAxis(!grid.samplePeriods.empty(), "samplePeriods");

    std::vector<JobSpec> specs;
    specs.reserve(grid.benchmarks.size() * grid.machines.size() *
                  grid.schedulers.size() * grid.thresholds.size() *
                  grid.traceSeeds.size() * grid.l2Kbs.size() *
                  grid.l2Lats.size() * grid.memLats.size() *
                  grid.samplePeriods.size());
    for (const auto &benchmark : grid.benchmarks)
      for (const auto &machine : grid.machines)
        for (const auto &scheduler : grid.schedulers)
          for (unsigned threshold : grid.thresholds)
            for (std::uint64_t seed : grid.traceSeeds)
              for (unsigned l2kb : grid.l2Kbs)
                for (unsigned l2lat : grid.l2Lats)
                  for (unsigned memlat : grid.memLats)
                    for (std::uint64_t period : grid.samplePeriods) {
                      JobSpec spec;
                      spec.benchmark = benchmark;
                      spec.machine = machine;
                      spec.scheduler = scheduler;
                      spec.threshold = threshold;
                      spec.traceSeed = seed;
                      spec.l2Kb = l2kb;
                      spec.l2Lat = l2lat;
                      spec.memLat = memlat;
                      spec.samplePeriod = period;
                      spec.sampleDetail = grid.sampleDetail;
                      spec.sampleWarmup = grid.sampleWarmup;
                      spec.fillPorts = grid.fillPorts;
                      spec.scale = grid.scale;
                      spec.unroll = grid.unroll;
                      spec.predictor = grid.predictor;
                      spec.maxInsts = grid.maxInsts;
                      spec.maxCycles = grid.maxCycles;
                      spec.profileSeed = grid.profileSeedFollowsTraceSeed
                                             ? seed
                                             : spec.profileSeed;
                      specs.push_back(std::move(spec));
                    }
    return specs;
}

CampaignSummary
summarize(const std::vector<JobResult> &results, double wall_ms)
{
    CampaignSummary summary;
    summary.total = results.size();
    summary.wallMs = wall_ms;
    for (const auto &result : results) {
        switch (result.status) {
        case JobStatus::Ok: ++summary.ok; break;
        case JobStatus::TimedOut: ++summary.timedOut; break;
        case JobStatus::Failed: ++summary.failed; break;
        }
        if (result.fromCache)
            ++summary.fromCache;
    }
    return summary;
}

std::vector<JobResult>
runCampaign(const std::vector<JobSpec> &specs,
            const CampaignOptions &options, CampaignSummary *summary)
{
    const auto start = std::chrono::steady_clock::now();
    ArtifactStore store(options.cacheDir);
    ArtifactStore *const compileStore =
        options.compileCache ? &store : nullptr;

    std::vector<JobResult> results(specs.size());
    std::mutex progressMutex;
    std::size_t finished = 0;

    auto settle = [&](std::size_t index, JobResult result) {
        // Slot assignment keeps output order == spec order no matter
        // which worker finishes first.
        results[index] = std::move(result);
        std::lock_guard<std::mutex> lock(progressMutex);
        ++finished;
        if (options.onResult)
            options.onResult(finished, specs.size(), results[index]);
    };

    // --- Graph construction. Store hits settle immediately; every
    // other spec becomes one simulation node, preceded by one shared
    // compile node per distinct compile key. The compile edge replaces
    // the old blocking-future path: a job whose binary is still
    // compiling is simply not ready yet, so its worker slot simulates
    // some other point instead of sleeping in future.get().
    taskgraph::TaskGraph graph;
    std::map<std::string, taskgraph::NodeId> compileNodes;
    std::vector<std::pair<std::size_t, taskgraph::NodeId>> simNodes;
    std::uint64_t keyedJobs = 0; // sim jobs routed through a compile key

    for (std::size_t i = 0; i < specs.size(); ++i) {
        const JobSpec &spec = specs[i];
        std::optional<JobResult> stored;
        {
            PROF_SCOPE("runner.artifacts.lookup");
            stored = store.loadResult(spec);
        }
        if (stored) {
            PROF_SCOPE("runner.artifacts.hit");
            settle(i, std::move(*stored));
            continue;
        }

        const taskgraph::NodeId sim = graph.add(
            spec.benchmark + "/" + spec.machine + "/" + spec.scheduler,
            spec.samplePeriod > 0 ? "sample" : "sim", [&, i] {
                JobResult result = runJob(specs[i], compileStore);
                store.storeResult(result);
                settle(i, std::move(result));
            });
        simNodes.emplace_back(i, sim);

        if (!compileStore)
            continue;
        // Keying needs the validated machine shape; a spec that fails
        // here will fail identically inside runJob, which owns the
        // error reporting — leave its node without a compile edge.
        std::string key;
        try {
            spec.validate();
            const core::ProcessorConfig cfg = machineConfigFor(spec);
            const compiler::CompileOptions copt =
                jobCompileOptions(spec, cfg.numClusters);
            key = ArtifactStore::compileKeyFor(spec, copt);
        } catch (const std::exception &) {
            continue;
        }
        ++keyedJobs;
        auto it = compileNodes.find(key);
        if (it == compileNodes.end()) {
            const taskgraph::NodeId compile = graph.add(
                "compile " + spec.benchmark + "/" + spec.scheduler,
                "compile", [&, i, key] {
                    const JobSpec &cspec = specs[i];
                    const core::ProcessorConfig cfg =
                        machineConfigFor(cspec);
                    const compiler::CompileOptions copt =
                        jobCompileOptions(cspec, cfg.numClusters);
                    store.getOrCompile(key, [&] {
                        PROF_SCOPE("runner.compile");
                        workloads::WorkloadParams wp;
                        wp.scale = cspec.scale;
                        const prog::Program program =
                            workloads::benchmarkByName(cspec.benchmark)
                                .make(wp);
                        return compiler::compile(program, copt);
                    });
                });
            it = compileNodes.emplace(key, compile).first;
        }
        graph.addEdge(it->second, sim);
    }

    if (options.compileBarrier && !compileNodes.empty()) {
        // Pre-taskgraph phasing, kept for A/B measurement: every
        // simulation waits for every compile.
        const taskgraph::NodeId barrier =
            graph.add("compile barrier", "barrier", [] {});
        for (const auto &entry : compileNodes)
            graph.addEdge(entry.second, barrier);
        for (const auto &node : simNodes)
            graph.addEdge(barrier, node.second);
    }

    taskgraph::ExecStats estats;
    if (graph.size() > 0) {
        const taskgraph::Executor executor(options.jobs);
        estats = executor.run(graph);
    }

    // Simulation nodes cancelled by a failed compile never ran their
    // body; settle them now (in spec order) with the compiler's error
    // text — the same message the blocking path used to rethrow.
    for (const auto &node : simNodes) {
        if (graph.status(node.second) != taskgraph::NodeStatus::Cancelled)
            continue;
        JobResult result;
        result.spec = specs[node.first];
        result.status = JobStatus::Failed;
        result.error = graph.error(node.second);
        settle(node.first, std::move(result));
    }

    const double wallMs = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    if (summary) {
        *summary = summarize(results, wallMs);
        summary->compiles = store.stats().compiles;
        // Shared = keyed jobs minus the distinct keys they resolved
        // to; single-flight in the store guarantees the distinct-key
        // count is exactly the builder-invocation count.
        summary->compileHits =
            keyedJobs - static_cast<std::uint64_t>(compileNodes.size());
        summary->jobs = options.jobs ? options.jobs : 1;
        summary->criticalPathMs = estats.criticalPathMs;
        summary->maxQueueDepth = estats.maxQueueDepth;
    }
    return results;
}

} // namespace mca::runner
