#include "runner/campaign.hh"

#include <chrono>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "prof/prof.hh"
#include "runner/compile_cache.hh"
#include "runner/thread_pool.hh"

namespace mca::runner
{

std::vector<JobSpec>
expandGrid(const CampaignGrid &grid)
{
    auto requireAxis = [](bool nonempty, const char *axis) {
        if (!nonempty)
            throw std::runtime_error(std::string("campaign grid axis '") +
                                     axis + "' is empty");
    };
    requireAxis(!grid.benchmarks.empty(), "benchmarks");
    requireAxis(!grid.machines.empty(), "machines");
    requireAxis(!grid.schedulers.empty(), "schedulers");
    requireAxis(!grid.thresholds.empty(), "thresholds");
    requireAxis(!grid.traceSeeds.empty(), "traceSeeds");
    requireAxis(!grid.l2Kbs.empty(), "l2Kbs");
    requireAxis(!grid.l2Lats.empty(), "l2Lats");
    requireAxis(!grid.memLats.empty(), "memLats");
    requireAxis(!grid.samplePeriods.empty(), "samplePeriods");

    std::vector<JobSpec> specs;
    specs.reserve(grid.benchmarks.size() * grid.machines.size() *
                  grid.schedulers.size() * grid.thresholds.size() *
                  grid.traceSeeds.size() * grid.l2Kbs.size() *
                  grid.l2Lats.size() * grid.memLats.size() *
                  grid.samplePeriods.size());
    for (const auto &benchmark : grid.benchmarks)
      for (const auto &machine : grid.machines)
        for (const auto &scheduler : grid.schedulers)
          for (unsigned threshold : grid.thresholds)
            for (std::uint64_t seed : grid.traceSeeds)
              for (unsigned l2kb : grid.l2Kbs)
                for (unsigned l2lat : grid.l2Lats)
                  for (unsigned memlat : grid.memLats)
                    for (std::uint64_t period : grid.samplePeriods) {
                      JobSpec spec;
                      spec.benchmark = benchmark;
                      spec.machine = machine;
                      spec.scheduler = scheduler;
                      spec.threshold = threshold;
                      spec.traceSeed = seed;
                      spec.l2Kb = l2kb;
                      spec.l2Lat = l2lat;
                      spec.memLat = memlat;
                      spec.samplePeriod = period;
                      spec.sampleDetail = grid.sampleDetail;
                      spec.sampleWarmup = grid.sampleWarmup;
                      spec.fillPorts = grid.fillPorts;
                      spec.scale = grid.scale;
                      spec.unroll = grid.unroll;
                      spec.predictor = grid.predictor;
                      spec.maxInsts = grid.maxInsts;
                      spec.maxCycles = grid.maxCycles;
                      spec.profileSeed = grid.profileSeedFollowsTraceSeed
                                             ? seed
                                             : spec.profileSeed;
                      specs.push_back(std::move(spec));
                    }
    return specs;
}

CampaignSummary
summarize(const std::vector<JobResult> &results, double wall_ms)
{
    CampaignSummary summary;
    summary.total = results.size();
    summary.wallMs = wall_ms;
    for (const auto &result : results) {
        switch (result.status) {
        case JobStatus::Ok: ++summary.ok; break;
        case JobStatus::TimedOut: ++summary.timedOut; break;
        case JobStatus::Failed: ++summary.failed; break;
        }
        if (result.fromCache)
            ++summary.fromCache;
    }
    return summary;
}

std::vector<JobResult>
runCampaign(const std::vector<JobSpec> &specs,
            const CampaignOptions &options, CampaignSummary *summary)
{
    const auto start = std::chrono::steady_clock::now();
    const ResultCache cache(options.cacheDir);
    CompileCache compileCache;
    CompileCache *const ccache =
        options.compileCache ? &compileCache : nullptr;

    std::vector<JobResult> results(specs.size());
    std::mutex progressMutex;
    std::size_t finished = 0;

    auto settle = [&](std::size_t index, JobResult result) {
        // Slot assignment keeps output order == spec order no matter
        // which worker finishes first.
        results[index] = std::move(result);
        std::lock_guard<std::mutex> lock(progressMutex);
        ++finished;
        if (options.onResult)
            options.onResult(finished, specs.size(), results[index]);
    };

    {
        ThreadPool pool(options.jobs);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            std::optional<JobResult> cached;
            {
                PROF_SCOPE("runner.result_cache.lookup");
                cached = cache.load(specs[i]);
            }
            if (cached) {
                PROF_SCOPE("runner.result_cache.hit");
                settle(i, std::move(*cached));
                continue;
            }
            pool.submit([&, i] {
                JobResult result = runJob(specs[i], ccache);
                cache.store(result);
                settle(i, std::move(result));
            });
        }
        pool.wait();
    }

    const double wallMs = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    if (summary) {
        *summary = summarize(results, wallMs);
        const CompileCache::Stats cstats = compileCache.stats();
        summary->compiles = cstats.compiles;
        summary->compileHits = cstats.hits;
    }
    return results;
}

} // namespace mca::runner
