/**
 * @file
 * Fixed-width worker pool with a FIFO work queue.
 *
 * The campaign runner shards independent compile-and-simulate jobs
 * across cores with this pool. Tasks are plain std::function<void()>;
 * result plumbing is the submitter's job (the Campaign writes each
 * result into a pre-sized slot, so no synchronization is needed on the
 * output side beyond the pool's completion barrier).
 *
 * `width = 1` degenerates to serial execution on one worker thread,
 * which is how `mcarun --jobs 1` guarantees the same code path (and
 * bit-identical results) as any wider run.
 */

#ifndef MCA_RUNNER_THREAD_POOL_HH
#define MCA_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mca::runner
{

class ThreadPool
{
  public:
    /** Spawn `width` workers (clamped to at least 1). */
    explicit ThreadPool(unsigned width);

    /** Drains the queue, waits for in-flight tasks, joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task. Tasks must not throw (wrap fallible work). */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned width() const { return static_cast<unsigned>(workers_.size()); }

    /** Queued-but-not-started task count (approximate; for progress). */
    std::size_t pending() const;

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::deque<std::function<void()>> queue_;
    std::size_t inFlight_ = 0;
    bool shutdown_ = false;
    std::vector<std::thread> workers_;
};

} // namespace mca::runner

#endif // MCA_RUNNER_THREAD_POOL_HH
