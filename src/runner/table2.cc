#include "runner/table2.hh"

#include "support/panic.hh"
#include "workloads/workloads.hh"

namespace mca::runner
{

namespace
{

harness::RunStats
toRunStats(const JobResult &result)
{
    harness::RunStats stats;
    stats.cycles = result.cycles;
    stats.retired = result.retired;
    stats.ipc = result.ipc;
    stats.distSingle = result.distSingle;
    stats.distDual = result.distDual;
    stats.operandForwards = result.operandForwards;
    stats.resultForwards = result.resultForwards;
    stats.replays = result.replays;
    stats.issueDisorder = result.issueDisorder;
    stats.bpredAccuracy = result.bpredAccuracy;
    stats.dcacheMissRate = result.dcacheMissRate;
    stats.icacheMissRate = result.icacheMissRate;
    stats.l2MissRate = result.l2MissRate;
    stats.completed = result.status == JobStatus::Ok;
    stats.cycleStack.slotCycles = result.stackSlotCycles;
    stats.cycleStack.slots = result.stackSlots;
    stats.cycleStack.cycles = result.cycles;
    return stats;
}

} // namespace

std::vector<JobSpec>
table2Jobs(const harness::ExperimentOptions &options)
{
    const std::string single = options.eightWay ? "single8" : "single4";
    const std::string dual = options.eightWay ? "dual8" : "dual4";

    std::vector<JobSpec> jobs;
    jobs.reserve(3 * workloads::allBenchmarks().size());
    for (const auto &bench : workloads::allBenchmarks()) {
        JobSpec base;
        base.benchmark = bench.name;
        base.scale = options.workload.scale;
        base.threshold = options.imbalanceThreshold;
        base.traceSeed = options.traceSeed;
        // runTable2Row seeds the profiling run with the trace seed.
        base.profileSeed = options.traceSeed;
        base.maxInsts = options.maxInsts;

        JobSpec singleNative = base;
        singleNative.machine = single;
        singleNative.scheduler = "native";
        jobs.push_back(singleNative);

        JobSpec dualNative = base;
        dualNative.machine = dual;
        dualNative.scheduler = "native";
        jobs.push_back(dualNative);

        JobSpec dualLocal = base;
        dualLocal.machine = dual;
        dualLocal.scheduler = "local";
        jobs.push_back(dualLocal);
    }
    return jobs;
}

std::vector<harness::Table2Row>
assembleTable2Rows(const std::vector<JobResult> &jobs)
{
    MCA_ASSERT(jobs.size() % 3 == 0,
               "table-2 job list must hold three jobs per benchmark");
    std::vector<harness::Table2Row> rows;
    rows.reserve(jobs.size() / 3);
    for (std::size_t i = 0; i + 2 < jobs.size(); i += 3) {
        const JobResult &single = jobs[i];
        const JobResult &dualNone = jobs[i + 1];
        const JobResult &dualLocal = jobs[i + 2];

        harness::Table2Row row;
        row.benchmark = single.spec.benchmark;
        row.single = toRunStats(single);
        row.dualNone = toRunStats(dualNone);
        row.dualLocal = toRunStats(dualLocal);
        row.spillLoadsLocal = dualLocal.spillLoads;
        row.spillStoresLocal = dualLocal.spillStores;
        row.otherClusterSpills = dualLocal.otherClusterSpills;

        auto pct = [&](const harness::RunStats &dual) {
            if (row.single.cycles == 0)
                return 0.0;
            return 100.0 -
                   100.0 * (static_cast<double>(dual.cycles) /
                            static_cast<double>(row.single.cycles));
        };
        row.pctNone = pct(row.dualNone);
        row.pctLocal = pct(row.dualLocal);
        rows.push_back(std::move(row));
    }
    return rows;
}

Table2CampaignResult
runTable2Campaign(const harness::ExperimentOptions &options,
                  const CampaignOptions &campaign)
{
    Table2CampaignResult out;
    const auto jobs = table2Jobs(options);
    out.jobs = runCampaign(jobs, campaign, &out.summary);
    out.rows = assembleTable2Rows(out.jobs);
    return out;
}

} // namespace mca::runner
