#include "runner/result_cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <thread>

#include "support/panic.hh"

namespace mca::runner
{

namespace
{

// v5: partition-quality fields (partitionCut, partitionBalance) for
// the N-cluster partitioner sweeps. v4: sampled-simulation fields
// (sampled, sampledIntervals, cpiCi95) and sample axes in the
// canonical key. v3: memory-hierarchy taxonomy (dcache_l2/dcache_mem
// stack causes, l2MissRate). v2: cycle-stack fields. Older entries
// fail the version check and are treated as misses.
constexpr int kFormatVersion = 5;

std::string
formatDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::entryPath(const JobSpec &spec) const
{
    return dir_ + "/" + spec.contentHash() + ".result";
}

std::optional<JobResult>
ResultCache::load(const JobSpec &spec) const
{
    if (!enabled())
        return std::nullopt;
    std::ifstream in(entryPath(spec));
    if (!in)
        return std::nullopt;

    std::map<std::string, std::string> fields;
    std::string line;
    while (std::getline(in, line)) {
        const auto tab = line.find('\t');
        if (tab == std::string::npos)
            continue;
        fields[line.substr(0, tab)] = line.substr(tab + 1);
    }

    // Reject stale formats and (theoretical) hash collisions: the entry
    // must carry the exact canonical key of the requesting spec.
    if (fields["version"] != std::to_string(kFormatVersion) ||
        fields["key"] != spec.canonicalKey())
        return std::nullopt;

    try {
        JobResult out;
        out.spec = spec;
        const std::string &status = fields.at("status");
        if (status == "ok")
            out.status = JobStatus::Ok;
        else if (status == "timeout")
            out.status = JobStatus::TimedOut;
        else
            return std::nullopt;
        out.error = fields["error"];
        out.cycles = std::stoull(fields.at("cycles"));
        out.retired = std::stoull(fields.at("retired"));
        out.ipc = std::stod(fields.at("ipc"));
        out.distSingle = std::stoull(fields.at("distSingle"));
        out.distDual = std::stoull(fields.at("distDual"));
        out.operandForwards = std::stoull(fields.at("operandForwards"));
        out.resultForwards = std::stoull(fields.at("resultForwards"));
        out.replays = std::stoull(fields.at("replays"));
        out.issueDisorder = std::stoull(fields.at("issueDisorder"));
        out.bpredAccuracy = std::stod(fields.at("bpredAccuracy"));
        out.dcacheMissRate = std::stod(fields.at("dcacheMissRate"));
        out.icacheMissRate = std::stod(fields.at("icacheMissRate"));
        out.l2MissRate = std::stod(fields.at("l2MissRate"));
        out.spillLoads = std::stoull(fields.at("spillLoads"));
        out.spillStores = std::stoull(fields.at("spillStores"));
        out.otherClusterSpills = std::stoull(fields.at("otherClusterSpills"));
        out.partitionCut = std::stoull(fields.at("partitionCut"));
        out.partitionBalance = std::stod(fields.at("partitionBalance"));
        out.stackSlots =
            static_cast<unsigned>(std::stoul(fields.at("stackSlots")));
        for (std::size_t i = 0; i < obs::kNumStallCauses; ++i)
            out.stackSlotCycles[i] = std::stoull(fields.at(
                std::string("stack_") +
                obs::stallCauseName(static_cast<obs::StallCause>(i))));
        out.sampled = fields.at("sampled") == "1";
        out.sampledIntervals = std::stoull(fields.at("sampledIntervals"));
        out.cpiCi95 = std::stod(fields.at("cpiCi95"));
        out.wallMs = std::stod(fields.at("wallMs"));
        out.fromCache = true;
        return out;
    } catch (const std::exception &) {
        return std::nullopt; // malformed entry == miss; rerun overwrites it
    }
}

void
ResultCache::store(const JobResult &result) const
{
    if (!enabled() || result.status == JobStatus::Failed)
        return;

    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        MCA_WARN("result cache: cannot create '", dir_, "': ",
                 ec.message());
        return;
    }

    const std::string path = entryPath(result.spec);
    const std::string tmp =
        path + ".tmp." +
        std::to_string(
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            MCA_WARN("result cache: cannot write '", tmp, "'");
            return;
        }
        out << "version\t" << kFormatVersion << "\n"
            << "key\t" << result.spec.canonicalKey() << "\n"
            << "status\t" << jobStatusName(result.status) << "\n"
            << "error\t" << result.error << "\n"
            << "cycles\t" << result.cycles << "\n"
            << "retired\t" << result.retired << "\n"
            << "ipc\t" << formatDouble(result.ipc) << "\n"
            << "distSingle\t" << result.distSingle << "\n"
            << "distDual\t" << result.distDual << "\n"
            << "operandForwards\t" << result.operandForwards << "\n"
            << "resultForwards\t" << result.resultForwards << "\n"
            << "replays\t" << result.replays << "\n"
            << "issueDisorder\t" << result.issueDisorder << "\n"
            << "bpredAccuracy\t" << formatDouble(result.bpredAccuracy) << "\n"
            << "dcacheMissRate\t" << formatDouble(result.dcacheMissRate)
            << "\n"
            << "icacheMissRate\t" << formatDouble(result.icacheMissRate)
            << "\n"
            << "l2MissRate\t" << formatDouble(result.l2MissRate) << "\n"
            << "spillLoads\t" << result.spillLoads << "\n"
            << "spillStores\t" << result.spillStores << "\n"
            << "otherClusterSpills\t" << result.otherClusterSpills << "\n"
            << "partitionCut\t" << result.partitionCut << "\n"
            << "partitionBalance\t" << formatDouble(result.partitionBalance)
            << "\n"
            << "stackSlots\t" << result.stackSlots << "\n";
        for (std::size_t i = 0; i < obs::kNumStallCauses; ++i)
            out << "stack_"
                << obs::stallCauseName(static_cast<obs::StallCause>(i))
                << "\t" << result.stackSlotCycles[i] << "\n";
        out << "sampled\t" << (result.sampled ? 1 : 0) << "\n"
            << "sampledIntervals\t" << result.sampledIntervals << "\n"
            << "cpiCi95\t" << formatDouble(result.cpiCi95) << "\n"
            << "wallMs\t" << formatDouble(result.wallMs) << "\n";
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        MCA_WARN("result cache: cannot rename '", tmp, "': ", ec.message());
        std::filesystem::remove(tmp, ec);
    }
}

} // namespace mca::runner
