/**
 * @file
 * Experiment campaigns: parameter-grid expansion and parallel execution.
 *
 * A CampaignGrid is the cross product of benchmark × machine ×
 * scheduler × threshold × trace-seed lists over a shared set of
 * run-control bounds; expandGrid() flattens it into JobSpecs in a
 * deterministic order (the nesting order documented on the struct).
 *
 * runCampaign() is graph construction: each spec not served by the
 * ArtifactStore becomes a simulation node in a taskgraph::TaskGraph,
 * with one deduplicated compile node per distinct compile key feeding
 * its simulation nodes, and the whole DAG runs N-wide on the
 * taskgraph::Executor. Because the compile dependency is an edge
 * rather than a blocking future inside the job body, a compile only
 * ever occupies one worker while sibling workers simulate other
 * points (bench/campaign_compile measures the overlap win).
 *
 * Determinism guarantee: results are written into their spec's slot
 * (never in completion order), each job owns all of its state, and
 * `harness::simulate` is single-threaded internally — so the emitted
 * results are bit-identical for any `jobs` width. A job that throws or
 * exhausts its cycle budget is recorded (status Failed / TimedOut) and
 * the campaign continues; a failed compile fails exactly the jobs that
 * depended on it, with the compiler's error text.
 */

#ifndef MCA_RUNNER_CAMPAIGN_HH
#define MCA_RUNNER_CAMPAIGN_HH

#include <functional>
#include <string>
#include <vector>

#include "runner/artifact_store.hh"
#include "runner/jobspec.hh"

namespace mca::runner
{

/** Parameter grid; expansion nests benchmark(outer) → machine →
 *  scheduler → threshold → traceSeed → l2Kb → l2Lat → memLat →
 *  samplePeriod(inner). */
struct CampaignGrid
{
    std::vector<std::string> benchmarks = {"compress"};
    std::vector<std::string> machines = {"dual8"};
    std::vector<std::string> schedulers = {"local"};
    std::vector<unsigned> thresholds = {4};
    std::vector<std::uint64_t> traceSeeds = {42};
    // Memory-hierarchy axes (defaults = paper mode; docs/memory.md).
    std::vector<unsigned> l2Kbs = {0};
    std::vector<unsigned> l2Lats = {6};
    std::vector<unsigned> memLats = {16};
    /** Sampled-simulation axis: 0 = full detailed run (the default),
     *  > 0 = systematic sampling with this period (docs/sampling.md). */
    std::vector<std::uint64_t> samplePeriods = {0};

    // Shared run-control bounds (copied into every spec).
    double scale = 0.2;
    unsigned unroll = 1;
    std::string predictor;
    /** Fill ports per memory level; 0 = unlimited (paper mode). */
    unsigned fillPorts = 0;
    /** Per-interval sizes for the samplePeriods axis. */
    std::uint64_t sampleDetail = 10'000;
    std::uint64_t sampleWarmup = 2'000;
    std::uint64_t maxInsts = 300'000;
    Cycle maxCycles = 100'000'000;
    /** Tie each spec's profileSeed to its traceSeed (Table-2 harness
     *  convention). When false, profileSeed stays at the spec default. */
    bool profileSeedFollowsTraceSeed = true;
};

/** Flatten the grid. Throws std::runtime_error if any axis is empty. */
std::vector<JobSpec> expandGrid(const CampaignGrid &grid);

/** Aggregate campaign outcome. */
struct CampaignSummary
{
    std::size_t total = 0;
    std::size_t ok = 0;
    std::size_t timedOut = 0;
    std::size_t failed = 0;
    std::size_t fromCache = 0;
    double wallMs = 0.0; ///< whole-campaign wall clock

    // Compile-cache outcome (zero when the cache is disabled).
    /** Compiler invocations == distinct (workload, compile-config)
     *  pairs among the jobs that actually ran. */
    std::uint64_t compiles = 0;
    /** Jobs that shared a compile instead of running their own. */
    std::uint64_t compileHits = 0;

    // Executor outcome (zero when every job came from the store).
    /** Resolved worker width the campaign ran at. */
    unsigned jobs = 0;
    /** Longest compile→simulate chain in host ms (taskgraph.hh). */
    double criticalPathMs = 0.0;
    /** Peak ready-queue depth inside the executor. */
    std::size_t maxQueueDepth = 0;
};

struct CampaignOptions
{
    /** Worker width (1 = serial; results are identical either way). */
    unsigned jobs = 1;
    /** Cache directory; empty disables caching. */
    std::string cacheDir;
    /** Share compiles across jobs with equal (workload, compile-config)
     *  keys (see artifact_store.hh). Results are identical either way. */
    bool compileCache = true;
    /**
     * Measurement baseline for bench/campaign_compile: insert a
     * barrier node so no simulation starts until every compile has
     * finished (the pre-taskgraph phasing). Results are identical;
     * only the schedule — and the wall clock — changes.
     */
    bool compileBarrier = false;
    /**
     * Called after each job settles, under a lock (safe to write to a
     * stream), with (finished-count, total, just-finished result).
     * Used for the live progress line.
     */
    std::function<void(std::size_t, std::size_t, const JobResult &)>
        onResult;
};

/**
 * Run every spec (cache-first), return results in spec order.
 * Never throws for per-job errors; see JobResult::status.
 */
std::vector<JobResult> runCampaign(const std::vector<JobSpec> &specs,
                                   const CampaignOptions &options,
                                   CampaignSummary *summary = nullptr);

/** Summarize an already-run result list (plus wall time if known). */
CampaignSummary summarize(const std::vector<JobResult> &results,
                          double wall_ms = 0.0);

} // namespace mca::runner

#endif // MCA_RUNNER_CAMPAIGN_HH
