/**
 * @file
 * On-disk result cache keyed by JobSpec content hash.
 *
 * Layout: one text file per cached job, `<dir>/<hash>.result`, holding
 * `name<TAB>value` lines. The file stores the full canonical spec key
 * and load() verifies it against the requesting spec, so a (vanishingly
 * unlikely) 64-bit hash collision degrades to a cache miss instead of
 * returning the wrong point's numbers. Files are written via a
 * temporary + rename so a killed run never leaves a truncated entry.
 *
 * Because every outcome-affecting field participates in the hash
 * (see JobSpec::canonicalKey), a cached result is exactly as good as
 * re-running the simulation: re-running a sweep only simulates points
 * whose spec changed. Failed jobs are never stored — a rerun retries
 * them — but TimedOut results are cached (the cycle budget is part of
 * the spec, so the timeout is deterministic).
 */

#ifndef MCA_RUNNER_RESULT_CACHE_HH
#define MCA_RUNNER_RESULT_CACHE_HH

#include <optional>
#include <string>

#include "runner/jobspec.hh"

namespace mca::runner
{

class ResultCache
{
  public:
    /**
     * @param dir  Cache directory (created on first store). Empty
     *             disables the cache: load() always misses, store()
     *             is a no-op.
     */
    explicit ResultCache(std::string dir);

    /** Fetch the cached result for `spec`, if present and key-valid. */
    std::optional<JobResult> load(const JobSpec &spec) const;

    /** Persist one result (Failed results are skipped). */
    void store(const JobResult &result) const;

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Path the given spec's entry lives at (diagnostics/tests). */
    std::string entryPath(const JobSpec &spec) const;

  private:
    std::string dir_;
};

} // namespace mca::runner

#endif // MCA_RUNNER_RESULT_CACHE_HH
