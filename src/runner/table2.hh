/**
 * @file
 * The Table-2 experiment expressed as a campaign.
 *
 * Each benchmark contributes three independent jobs — native binary on
 * the single-cluster machine, native on dual, locally-rescheduled on
 * dual — and the rows are assembled from the job results afterward.
 * Because every job re-derives its workload and compilation
 * deterministically from its spec, the assembled rows are bit-identical
 * to `harness::runTable2Row` (which compiles once and simulates three
 * times in sequence), at any `--jobs` width, with cache hits, or across
 * reruns.
 */

#ifndef MCA_RUNNER_TABLE2_HH
#define MCA_RUNNER_TABLE2_HH

#include <vector>

#include "harness/experiment.hh"
#include "runner/campaign.hh"

namespace mca::runner
{

/** The Table-2 job list: three jobs per benchmark, Table-2 order. */
std::vector<JobSpec> table2Jobs(const harness::ExperimentOptions &options);

struct Table2CampaignResult
{
    std::vector<harness::Table2Row> rows;
    /** The raw per-job results (for the JSONL/CSV emitters). */
    std::vector<JobResult> jobs;
    CampaignSummary summary;
};

/** Run the full Table-2 experiment through the campaign runner. */
Table2CampaignResult
runTable2Campaign(const harness::ExperimentOptions &options,
                  const CampaignOptions &campaign);

/** Rebuild rows from an already-run table2Jobs() result list. */
std::vector<harness::Table2Row>
assembleTable2Rows(const std::vector<JobResult> &jobs);

} // namespace mca::runner

#endif // MCA_RUNNER_TABLE2_HH
