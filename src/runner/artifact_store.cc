#include "runner/artifact_store.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "prof/prof.hh"
#include "support/panic.hh"

namespace mca::runner
{

namespace
{

// v6: unified artifact-store layout — a `type` line names the payload
// kind so every artifact class shares one addressing scheme. v5 and
// older entries (the pre-ArtifactStore result cache) fail the version
// check and read as cold; a rerun overwrites them in place.
constexpr int kFormatVersion = 6;

/** Shortest round-trippable decimal form, stable across platforms. */
std::string
formatDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

} // namespace

ArtifactStore::ArtifactStore(std::string dir) : dir_(std::move(dir)) {}

std::string
ArtifactStore::resultPath(const JobSpec &spec) const
{
    return dir_ + "/" + spec.contentHash() + ".result";
}

std::optional<JobResult>
ArtifactStore::loadResult(const JobSpec &spec) const
{
    if (!persistent())
        return std::nullopt;
    std::ifstream in(resultPath(spec));
    if (!in)
        return std::nullopt;

    std::map<std::string, std::string> fields;
    std::string line;
    while (std::getline(in, line)) {
        const auto tab = line.find('\t');
        if (tab == std::string::npos)
            continue;
        fields[line.substr(0, tab)] = line.substr(tab + 1);
    }

    // Reject stale formats, foreign payload types, and (theoretical)
    // hash collisions: the artifact must carry the exact canonical key
    // of the requesting spec.
    if (fields["version"] != std::to_string(kFormatVersion) ||
        fields["type"] != "result" ||
        fields["key"] != spec.canonicalKey())
        return std::nullopt;

    try {
        JobResult out;
        out.spec = spec;
        const std::string &status = fields.at("status");
        if (status == "ok")
            out.status = JobStatus::Ok;
        else if (status == "timeout")
            out.status = JobStatus::TimedOut;
        else
            return std::nullopt;
        out.error = fields["error"];
        out.cycles = std::stoull(fields.at("cycles"));
        out.retired = std::stoull(fields.at("retired"));
        out.ipc = std::stod(fields.at("ipc"));
        out.distSingle = std::stoull(fields.at("distSingle"));
        out.distDual = std::stoull(fields.at("distDual"));
        out.operandForwards = std::stoull(fields.at("operandForwards"));
        out.resultForwards = std::stoull(fields.at("resultForwards"));
        out.replays = std::stoull(fields.at("replays"));
        out.issueDisorder = std::stoull(fields.at("issueDisorder"));
        out.bpredAccuracy = std::stod(fields.at("bpredAccuracy"));
        out.dcacheMissRate = std::stod(fields.at("dcacheMissRate"));
        out.icacheMissRate = std::stod(fields.at("icacheMissRate"));
        out.l2MissRate = std::stod(fields.at("l2MissRate"));
        out.spillLoads = std::stoull(fields.at("spillLoads"));
        out.spillStores = std::stoull(fields.at("spillStores"));
        out.otherClusterSpills = std::stoull(fields.at("otherClusterSpills"));
        out.partitionCut = std::stoull(fields.at("partitionCut"));
        out.partitionBalance = std::stod(fields.at("partitionBalance"));
        out.stackSlots =
            static_cast<unsigned>(std::stoul(fields.at("stackSlots")));
        for (std::size_t i = 0; i < obs::kNumStallCauses; ++i)
            out.stackSlotCycles[i] = std::stoull(fields.at(
                std::string("stack_") +
                obs::stallCauseName(static_cast<obs::StallCause>(i))));
        out.sampled = fields.at("sampled") == "1";
        out.sampledIntervals = std::stoull(fields.at("sampledIntervals"));
        out.cpiCi95 = std::stod(fields.at("cpiCi95"));
        out.wallMs = std::stod(fields.at("wallMs"));
        out.fromCache = true;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.resultHits;
        }
        return out;
    } catch (const std::exception &) {
        return std::nullopt; // malformed artifact == miss; rerun overwrites
    }
}

void
ArtifactStore::storeResult(const JobResult &result) const
{
    if (!persistent() || result.status == JobStatus::Failed)
        return;

    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec) {
        MCA_WARN("artifact store: cannot create '", dir_, "': ",
                 ec.message());
        return;
    }

    const std::string path = resultPath(result.spec);
    const std::string tmp =
        path + ".tmp." +
        std::to_string(
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            MCA_WARN("artifact store: cannot write '", tmp, "'");
            return;
        }
        out << "version\t" << kFormatVersion << "\n"
            << "type\tresult\n"
            << "key\t" << result.spec.canonicalKey() << "\n"
            << "status\t" << jobStatusName(result.status) << "\n"
            << "error\t" << result.error << "\n"
            << "cycles\t" << result.cycles << "\n"
            << "retired\t" << result.retired << "\n"
            << "ipc\t" << formatDouble(result.ipc) << "\n"
            << "distSingle\t" << result.distSingle << "\n"
            << "distDual\t" << result.distDual << "\n"
            << "operandForwards\t" << result.operandForwards << "\n"
            << "resultForwards\t" << result.resultForwards << "\n"
            << "replays\t" << result.replays << "\n"
            << "issueDisorder\t" << result.issueDisorder << "\n"
            << "bpredAccuracy\t" << formatDouble(result.bpredAccuracy) << "\n"
            << "dcacheMissRate\t" << formatDouble(result.dcacheMissRate)
            << "\n"
            << "icacheMissRate\t" << formatDouble(result.icacheMissRate)
            << "\n"
            << "l2MissRate\t" << formatDouble(result.l2MissRate) << "\n"
            << "spillLoads\t" << result.spillLoads << "\n"
            << "spillStores\t" << result.spillStores << "\n"
            << "otherClusterSpills\t" << result.otherClusterSpills << "\n"
            << "partitionCut\t" << result.partitionCut << "\n"
            << "partitionBalance\t" << formatDouble(result.partitionBalance)
            << "\n"
            << "stackSlots\t" << result.stackSlots << "\n";
        for (std::size_t i = 0; i < obs::kNumStallCauses; ++i)
            out << "stack_"
                << obs::stallCauseName(static_cast<obs::StallCause>(i))
                << "\t" << result.stackSlotCycles[i] << "\n";
        out << "sampled\t" << (result.sampled ? 1 : 0) << "\n"
            << "sampledIntervals\t" << result.sampledIntervals << "\n"
            << "cpiCi95\t" << formatDouble(result.cpiCi95) << "\n"
            << "wallMs\t" << formatDouble(result.wallMs) << "\n";
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        MCA_WARN("artifact store: cannot rename '", tmp, "': ",
                 ec.message());
        std::filesystem::remove(tmp, ec);
    }
}

ArtifactStore::Compiled
ArtifactStore::getOrCompile(const std::string &key, const Builder &build,
                            bool *hit)
{
    std::promise<Compiled> promise;
    std::shared_future<Compiled> future;
    bool building = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.compileLookups;
        auto it = compiled_.find(key);
        if (it == compiled_.end()) {
            building = true;
            ++stats_.compiles;
            future = promise.get_future().share();
            compiled_.emplace(key, future);
        } else {
            ++stats_.compileHits;
            future = it->second;
        }
    }
    if (hit)
        *hit = !building;
    if (!building) {
        // Counted as a host-profile region so campaign profiles show
        // how often jobs adopt someone else's compile. Under the
        // task-graph campaign the future is already ready (the compile
        // node preceded us), so this never blocks a worker.
        PROF_SCOPE("runner.artifacts.compile_hit");
        return future.get();
    }
    try {
        promise.set_value(
            std::make_shared<const compiler::CompileOutput>(build()));
    } catch (...) {
        promise.set_exception(std::current_exception());
    }
    return future.get();
}

ArtifactStore::Stats
ArtifactStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::string
ArtifactStore::compileKeyFor(const JobSpec &spec,
                             const compiler::CompileOptions &options)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", spec.scale);
    return "benchmark=" + spec.benchmark + ";scale=" + buf + ";" +
           options.canonicalKey();
}

} // namespace mca::runner
