#include "runner/compile_cache.hh"

#include <cstdio>

#include "prof/prof.hh"
#include "runner/jobspec.hh"

namespace mca::runner
{

namespace
{

/** Same shortest-round-trip form JobSpec::canonicalKey uses. */
std::string
canonicalDouble(double value)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    return buf;
}

} // namespace

CompileCache::Compiled
CompileCache::getOrCompile(const std::string &key, const Builder &build,
                           bool *hit)
{
    std::promise<Compiled> promise;
    std::shared_future<Compiled> future;
    bool building = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.lookups;
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            building = true;
            ++stats_.compiles;
            future = promise.get_future().share();
            entries_.emplace(key, future);
        } else {
            ++stats_.hits;
            future = it->second;
        }
    }
    if (hit)
        *hit = !building;
    if (!building) {
        // Counted as a host-profile region so campaign profiles show
        // how often (and how long) jobs wait on someone else's compile.
        PROF_SCOPE("runner.compile_cache.hit");
        return future.get();
    }
    try {
        promise.set_value(
            std::make_shared<const compiler::CompileOutput>(build()));
    } catch (...) {
        promise.set_exception(std::current_exception());
    }
    return future.get();
}

CompileCache::Stats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::string
CompileCache::keyFor(const JobSpec &spec,
                     const compiler::CompileOptions &options)
{
    return "benchmark=" + spec.benchmark +
           ";scale=" + canonicalDouble(spec.scale) + ";" +
           options.canonicalKey();
}

} // namespace mca::runner
