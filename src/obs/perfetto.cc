#include "obs/perfetto.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

namespace mca::obs
{

namespace
{

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    char buf[40];
    const auto r = std::to_chars(buf, buf + sizeof buf, value);
    return r.ec == std::errc{} ? std::string(buf, r.ptr) : "0";
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** One instruction copy's lifetime inside one cluster. */
struct Slice
{
    InstSeq seq = 0;
    unsigned cluster = 0;
    Cycle begin = 0;
    Cycle end = 0;
    std::vector<std::uint32_t> recordIdx;
};

} // namespace

void
PerfettoExporter::ensureProcessNames(unsigned numClusters)
{
    for (unsigned c = namedClusters_; c < numClusters; ++c) {
        Event ev;
        ev.ph = 'M';
        ev.pid = c;
        ev.name = "process_name";
        ev.meta = "cluster " + std::to_string(c);
        events_.push_back(std::move(ev));
    }
    namedClusters_ = std::max(namedClusters_, numClusters);
}

void
PerfettoExporter::addTimeline(const core::TimelineRecorder &recorder,
                              unsigned numClusters)
{
    ensureProcessNames(numClusters);

    // Group the stream into per-(seq, cluster) slices. std::map keeps
    // the grouping deterministic across platforms.
    const auto &records = recorder.records();
    std::map<std::pair<InstSeq, unsigned>, Slice> slices;
    for (std::uint32_t i = 0; i < records.size(); ++i) {
        const auto &rec = records[i];
        auto [it, fresh] = slices.try_emplace({rec.seq, rec.cluster});
        Slice &s = it->second;
        if (fresh) {
            s.seq = rec.seq;
            s.cluster = rec.cluster;
            s.begin = rec.cycle;
            s.end = rec.cycle;
        } else {
            s.begin = std::min(s.begin, rec.cycle);
            s.end = std::max(s.end, rec.cycle);
        }
        s.recordIdx.push_back(i);
    }

    // Pack slices into per-cluster lanes so overlapping instructions
    // render on separate rows. Greedy: earliest-starting slice takes
    // the lowest lane that is already free.
    std::map<unsigned, std::vector<Slice>> byCluster;
    for (auto &[key, s] : slices)
        byCluster[key.second].push_back(std::move(s));

    for (auto &[cluster, list] : byCluster) {
        std::sort(list.begin(), list.end(),
                  [](const Slice &a, const Slice &b) {
                      return a.begin != b.begin ? a.begin < b.begin
                                                : a.seq < b.seq;
                  });
        std::vector<Cycle> laneFreeAt; // one past the lane's last cycle
        for (const Slice &s : list) {
            unsigned lane = 0;
            while (lane < laneFreeAt.size() && laneFreeAt[lane] > s.begin)
                ++lane;
            if (lane == laneFreeAt.size())
                laneFreeAt.push_back(0);
            laneFreeAt[lane] = s.end + 1;

            Event slice;
            slice.name = "inst " + std::to_string(s.seq);
            slice.ph = 'X';
            slice.ts = s.begin;
            slice.dur = s.end - s.begin + 1;
            slice.pid = s.cluster;
            slice.tid = lane + 1; // tid 0 is the counter track
            events_.push_back(std::move(slice));

            for (const std::uint32_t idx : s.recordIdx) {
                const auto &rec = records[idx];
                Event inst;
                inst.name = timelineEventName(rec.event) + " #" +
                            std::to_string(rec.seq);
                inst.ph = 'i';
                inst.ts = rec.cycle;
                inst.pid = s.cluster;
                inst.tid = lane + 1;
                events_.push_back(std::move(inst));
            }
        }
    }
}

void
PerfettoExporter::addCounters(const CycleObs &obs)
{
    ensureProcessNames(static_cast<unsigned>(obs.clusters.size()));
    for (unsigned c = 0; c < obs.clusters.size(); ++c) {
        const ClusterObs &cl = obs.clusters[c];
        const struct
        {
            const char *name;
            unsigned value;
        } counters[] = {
            {"dispatch queue", cl.queueOcc},
            {"operand buffer", cl.otbInUse},
            {"result buffer", cl.rtbInUse},
        };
        for (const auto &ctr : counters) {
            Event ev;
            ev.name = ctr.name;
            ev.ph = 'C';
            ev.ts = obs.cycle;
            ev.pid = c;
            ev.tid = 0;
            ev.value = ctr.value;
            events_.push_back(std::move(ev));
        }
    }

    // Memory hierarchy: in-flight fills per level, on a dedicated
    // process track after the clusters.
    const unsigned mem_pid = static_cast<unsigned>(obs.clusters.size());
    if (!namedMemory_) {
        Event ev;
        ev.ph = 'M';
        ev.pid = mem_pid;
        ev.name = "process_name";
        ev.meta = "memory system";
        events_.push_back(std::move(ev));
        namedMemory_ = true;
    }
    const struct
    {
        const char *name;
        unsigned value;
        bool enabled;
    } levels[] = {
        {"L1I in-flight fills", obs.l1iInFlight, true},
        {"L1D in-flight fills", obs.l1dInFlight, true},
        {"L2 in-flight fills", obs.l2InFlight, obs.hasL2},
        {"memory in-flight reads", obs.memInFlight, true},
    };
    for (const auto &lvl : levels) {
        if (!lvl.enabled)
            continue;
        Event ev;
        ev.name = lvl.name;
        ev.ph = 'C';
        ev.ts = obs.cycle;
        ev.pid = mem_pid;
        ev.tid = 0;
        ev.value = lvl.value;
        events_.push_back(std::move(ev));
    }
}

void
PerfettoExporter::nameProcess(unsigned pid, const std::string &name)
{
    Event ev;
    ev.ph = 'M';
    ev.pid = pid;
    ev.name = "process_name";
    ev.meta = name;
    events_.push_back(std::move(ev));
}

void
PerfettoExporter::addSlice(const std::string &name, unsigned pid,
                           unsigned tid, Cycle ts, Cycle dur)
{
    Event ev;
    ev.name = name;
    ev.ph = 'X';
    ev.ts = ts;
    ev.dur = dur;
    ev.pid = pid;
    ev.tid = tid;
    events_.push_back(std::move(ev));
}

void
PerfettoExporter::addCounterValue(const std::string &name, unsigned pid,
                                  Cycle ts, double value)
{
    Event ev;
    ev.name = name;
    ev.ph = 'C';
    ev.ts = ts;
    ev.pid = pid;
    ev.tid = 0;
    ev.value = value;
    events_.push_back(std::move(ev));
}

namespace
{

/** Flame-graph layout: a node spans [start, start+total), children
 *  pack sequentially from its start; the tail gap is the self time.
 *  Offsets stay in ns until emission so rounding never accumulates. */
void
emitProfileNode(PerfettoExporter &ex, const prof::ProfileNode &node,
                std::uint64_t start_ns, unsigned pid)
{
    ex.addSlice(node.name, pid, 1, start_ns / 1000,
                std::max<Cycle>(node.totalNs / 1000, 1));
    std::uint64_t off = start_ns;
    for (const auto &child : node.children) {
        emitProfileNode(ex, child, off, pid);
        off += child.totalNs;
    }
}

} // namespace

void
PerfettoExporter::addHostProfile(const prof::ProfileNode &root,
                                 unsigned pid)
{
    nameProcess(pid, "host profile");
    emitProfileNode(*this, root, 0, pid);
}

std::vector<PerfettoExporter::Event>
PerfettoExporter::sortedEvents() const
{
    std::vector<Event> sorted = events_;
    // Metadata first, then globally by timestamp. Stable, so events at
    // the same cycle keep insertion order (counters stay per-cycle
    // grouped). A globally sorted stream makes every (pid, tid) track
    // monotonically non-decreasing in ts.
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Event &a, const Event &b) {
                         if ((a.ph == 'M') != (b.ph == 'M'))
                             return a.ph == 'M';
                         return a.ts < b.ts;
                     });
    return sorted;
}

void
PerfettoExporter::write(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    for (const Event &ev : sortedEvents()) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "{\"name\":\"" << jsonEscape(ev.name) << "\",\"ph\":\""
           << ev.ph << "\",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
        switch (ev.ph) {
        case 'M':
            os << ",\"args\":{\"name\":\"" << jsonEscape(ev.meta)
               << "\"}";
            break;
        case 'X':
            os << ",\"ts\":" << ev.ts << ",\"dur\":" << ev.dur
               << ",\"args\":{}";
            break;
        case 'C':
            os << ",\"ts\":" << ev.ts << ",\"args\":{\"value\":"
               << jsonNumber(ev.value) << "}";
            break;
        default: // 'i'
            os << ",\"ts\":" << ev.ts << ",\"s\":\"t\",\"args\":{}";
            break;
        }
        os << "}";
    }
    os << "\n]}\n";
}

} // namespace mca::obs
