/**
 * @file
 * Chrome trace-event (Perfetto-loadable) export of simulator activity.
 *
 * Renders a core::TimelineRecorder stream as trace-event JSON that
 * ui.perfetto.dev and chrome://tracing open directly:
 *
 *  - each cluster is a "process" (pid = cluster index);
 *  - each dynamic instruction copy is a complete slice ("X") from its
 *    first to its last microarchitectural event, packed greedily into
 *    non-overlapping lanes (tid = lane) per cluster;
 *  - every recorded event is a thread-scoped instant ("i") on the
 *    slice's lane;
 *  - per-cluster occupancy counters ("C": dispatch queue, OTB, RTB)
 *    come from per-cycle CycleObs snapshots;
 *  - a "memory system" process (pid = cluster count) carries one
 *    in-flight-fill counter track per memory level (L1I/L1D, L2 when
 *    present, the backside).
 *
 * One simulated cycle maps to one microsecond of trace time. Events
 * are emitted sorted by timestamp, so every track's timestamps are
 * monotonically non-decreasing (asserted by tests/obs_test.cc).
 *
 * The exporter also carries *host-side* tracks so guest cycles and
 * host wall time render in one trace: addHostProfile() lays a src/prof
 * region tree out as a flame graph on its own process (one host
 * microsecond = one trace microsecond), and the generic
 * nameProcess/addSlice/addCounterValue primitives let tools emit
 * custom tracks (mcasim uses them for per-window tracks of sampled
 * runs: window extent, measured CPI, snapshot-restore time).
 */

#ifndef MCA_OBS_PERFETTO_HH
#define MCA_OBS_PERFETTO_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/timeline.hh"
#include "obs/snapshot.hh"
#include "prof/prof.hh"
#include "support/types.hh"

namespace mca::obs
{

class PerfettoExporter
{
  public:
    /** One trace event, pre-serialization (exposed for tests). */
    struct Event
    {
        std::string name;
        char ph = 'i'; ///< 'X' slice, 'i' instant, 'C' counter, 'M' meta
        Cycle ts = 0;
        Cycle dur = 0;      ///< slices only
        unsigned pid = 0;   ///< cluster index
        unsigned tid = 0;   ///< lane within the cluster (0 = counters)
        double value = 0.0; ///< counters only
        std::string meta;   ///< metadata payload ('M' only)
    };

    /**
     * Convert a recorded timeline into slices and instants.
     * @param numClusters  Cluster count (names the process tracks).
     */
    void addTimeline(const core::TimelineRecorder &recorder,
                     unsigned numClusters);

    /** Append one cycle's occupancy counters (call once per cycle). */
    void addCounters(const CycleObs &obs);

    /** Name a process track explicitly (idempotence is the caller's). */
    void nameProcess(unsigned pid, const std::string &name);

    /** Append one complete slice ('X') on (pid, tid). */
    void addSlice(const std::string &name, unsigned pid, unsigned tid,
                  Cycle ts, Cycle dur);

    /** Append one counter sample ('C') on pid's counter track. */
    void addCounterValue(const std::string &name, unsigned pid, Cycle ts,
                         double value);

    /**
     * Render a host-profiler region tree as a flame graph on process
     * @p pid (named "host profile"): each region is a slice whose
     * children pack sequentially inside it, 1 host us = 1 trace us.
     */
    void addHostProfile(const prof::ProfileNode &root, unsigned pid);

    /** Events sorted by (ts, insertion order) — the emission order. */
    std::vector<Event> sortedEvents() const;

    /** Serialize as a Chrome trace-event JSON document. */
    void write(std::ostream &os) const;

  private:
    void ensureProcessNames(unsigned numClusters);

    std::vector<Event> events_;
    unsigned namedClusters_ = 0;
    /** Whether the memory-system process track has been named. */
    bool namedMemory_ = false;
};

} // namespace mca::obs

#endif // MCA_OBS_PERFETTO_HH
