/**
 * @file
 * Chrome trace-event (Perfetto-loadable) export of simulator activity.
 *
 * Renders a core::TimelineRecorder stream as trace-event JSON that
 * ui.perfetto.dev and chrome://tracing open directly:
 *
 *  - each cluster is a "process" (pid = cluster index);
 *  - each dynamic instruction copy is a complete slice ("X") from its
 *    first to its last microarchitectural event, packed greedily into
 *    non-overlapping lanes (tid = lane) per cluster;
 *  - every recorded event is a thread-scoped instant ("i") on the
 *    slice's lane;
 *  - per-cluster occupancy counters ("C": dispatch queue, OTB, RTB)
 *    come from per-cycle CycleObs snapshots;
 *  - a "memory system" process (pid = cluster count) carries one
 *    in-flight-fill counter track per memory level (L1I/L1D, L2 when
 *    present, the backside).
 *
 * One simulated cycle maps to one microsecond of trace time. Events
 * are emitted sorted by timestamp, so every track's timestamps are
 * monotonically non-decreasing (asserted by tests/obs_test.cc).
 */

#ifndef MCA_OBS_PERFETTO_HH
#define MCA_OBS_PERFETTO_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/timeline.hh"
#include "obs/snapshot.hh"
#include "support/types.hh"

namespace mca::obs
{

class PerfettoExporter
{
  public:
    /** One trace event, pre-serialization (exposed for tests). */
    struct Event
    {
        std::string name;
        char ph = 'i'; ///< 'X' slice, 'i' instant, 'C' counter, 'M' meta
        Cycle ts = 0;
        Cycle dur = 0;      ///< slices only
        unsigned pid = 0;   ///< cluster index
        unsigned tid = 0;   ///< lane within the cluster (0 = counters)
        double value = 0.0; ///< counters only
        std::string meta;   ///< metadata payload ('M' only)
    };

    /**
     * Convert a recorded timeline into slices and instants.
     * @param numClusters  Cluster count (names the process tracks).
     */
    void addTimeline(const core::TimelineRecorder &recorder,
                     unsigned numClusters);

    /** Append one cycle's occupancy counters (call once per cycle). */
    void addCounters(const CycleObs &obs);

    /** Events sorted by (ts, insertion order) — the emission order. */
    std::vector<Event> sortedEvents() const;

    /** Serialize as a Chrome trace-event JSON document. */
    void write(std::ostream &os) const;

  private:
    void ensureProcessNames(unsigned numClusters);

    std::vector<Event> events_;
    unsigned namedClusters_ = 0;
    /** Whether the memory-system process track has been named. */
    bool namedMemory_ = false;
};

} // namespace mca::obs

#endif // MCA_OBS_PERFETTO_HH
