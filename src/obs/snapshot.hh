/**
 * @file
 * Per-cycle observation snapshot of the processor's occupancies.
 *
 * `core::Processor::observe()` fills a CycleObs in place each cycle;
 * the PeriodicSampler and the Perfetto counter tracks consume it. The
 * struct is header-only (no obs-library symbols) so the core can fill
 * it without a link dependency, and callers reuse one instance across
 * cycles so the steady state allocates nothing.
 */

#ifndef MCA_OBS_SNAPSHOT_HH
#define MCA_OBS_SNAPSHOT_HH

#include <cstdint>
#include <vector>

#include "support/types.hh"

namespace mca::obs
{

/** Occupancies of one cluster at one cycle. */
struct ClusterObs
{
    unsigned queueOcc = 0;
    unsigned queueCap = 0;
    unsigned otbInUse = 0;
    unsigned otbCap = 0;
    unsigned rtbInUse = 0;
    unsigned rtbCap = 0;
};

/** Whole-machine occupancy and progress counters at one cycle. */
struct CycleObs
{
    /** Number of completed cycles when the snapshot was taken. */
    Cycle cycle = 0;
    /** Cumulative (run-so-far) totals; consumers take deltas. */
    std::uint64_t retired = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t icacheAccesses = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheAccesses = 0;
    std::uint64_t dcacheMisses = 0;
    /** Shared-L2 totals; all zero when the machine has no L2. */
    bool hasL2 = false;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    /** Fills in flight per memory level at this cycle (not deltas). */
    unsigned l1iInFlight = 0;
    unsigned l1dInFlight = 0;
    unsigned l2InFlight = 0;
    unsigned memInFlight = 0;
    unsigned robOcc = 0;
    unsigned robCap = 0;
    std::vector<ClusterObs> clusters;
};

} // namespace mca::obs

#endif // MCA_OBS_SNAPSHOT_HH
