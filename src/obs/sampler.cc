#include "obs/sampler.hh"

#include <charconv>
#include <cmath>

#include "support/panic.hh"

namespace mca::obs
{

namespace
{

std::string
num(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[40];
    const auto r = std::to_chars(buf, buf + sizeof buf, value);
    return r.ec == std::errc{} ? std::string(buf, r.ptr) : "null";
}

double
rate(std::uint64_t part, std::uint64_t whole)
{
    return whole == 0 ? 0.0
                      : static_cast<double>(part) /
                            static_cast<double>(whole);
}

} // namespace

PeriodicSampler::PeriodicSampler(Cycle period) : period_(period)
{
    MCA_ASSERT(period_ >= 1, "sampler period must be >= 1");
}

void
PeriodicSampler::openInterval(const CycleObs &obs)
{
    // base_ already holds the previous interval's closing snapshot (or
    // zeroes for the first interval); deltas start from there.
    ticks_ = 0;
    open_ = true;
    queueOcc_.resize(obs.clusters.size());
    otbSumPer_.assign(obs.clusters.size(), 0.0);
    rtbSumPer_.assign(obs.clusters.size(), 0.0);
    for (std::size_t c = 0; c < obs.clusters.size(); ++c)
        queueOcc_[c].configure(1, obs.clusters[c].queueCap + 2);
    otbSum_ = rtbSum_ = robSum_ = 0.0;
}

void
PeriodicSampler::closeInterval(const CycleObs &obs)
{
    IntervalRow row;
    row.cycleBegin = base_.cycle;
    row.cycleEnd = obs.cycle;
    row.retired = obs.retired - base_.retired;
    row.dispatched = obs.dispatched - base_.dispatched;
    const auto span = static_cast<double>(ticks_);
    row.ipc = span == 0.0 ? 0.0 : static_cast<double>(row.retired) / span;
    row.robMean = span == 0.0 ? 0.0 : robSum_ / span;
    row.icacheMissRate = rate(obs.icacheMisses - base_.icacheMisses,
                              obs.icacheAccesses - base_.icacheAccesses);
    row.dcacheMissRate = rate(obs.dcacheMisses - base_.dcacheMisses,
                              obs.dcacheAccesses - base_.dcacheAccesses);
    row.l2MissRate = rate(obs.l2Misses - base_.l2Misses,
                          obs.l2Accesses - base_.l2Accesses);
    row.clusters.resize(queueOcc_.size());
    for (std::size_t c = 0; c < queueOcc_.size(); ++c) {
        auto &cl = row.clusters[c];
        cl.queueMean = queueOcc_[c].mean();
        cl.queueP50 = queueOcc_[c].percentile(0.50);
        cl.queueP99 = queueOcc_[c].percentile(0.99);
        cl.queueCap = c < obs.clusters.size()
                          ? obs.clusters[c].queueCap
                          : 0;
        cl.otbMean = span == 0.0 ? 0.0 : otbSumPer_[c] / span;
        cl.rtbMean = span == 0.0 ? 0.0 : rtbSumPer_[c] / span;
    }
    rows_.push_back(std::move(row));
    base_ = obs;
    open_ = false;
}

void
PeriodicSampler::tick(const CycleObs &obs)
{
    if (!open_)
        openInterval(obs);
    for (std::size_t c = 0;
         c < obs.clusters.size() && c < queueOcc_.size(); ++c) {
        queueOcc_[c].sample(obs.clusters[c].queueOcc);
        otbSumPer_[c] += obs.clusters[c].otbInUse;
        rtbSumPer_[c] += obs.clusters[c].rtbInUse;
    }
    robSum_ += obs.robOcc;
    ++ticks_;
    last_ = obs;
    if (ticks_ >= period_)
        closeInterval(obs);
}

void
PeriodicSampler::finish()
{
    if (open_ && ticks_ > 0)
        closeInterval(last_);
}

void
PeriodicSampler::writeJsonl(std::ostream &os) const
{
    for (const auto &row : rows_) {
        os << "{\"cycle_begin\":" << row.cycleBegin
           << ",\"cycle_end\":" << row.cycleEnd
           << ",\"retired\":" << row.retired
           << ",\"dispatched\":" << row.dispatched
           << ",\"ipc\":" << num(row.ipc)
           << ",\"rob_mean\":" << num(row.robMean)
           << ",\"icache_miss_rate\":" << num(row.icacheMissRate)
           << ",\"dcache_miss_rate\":" << num(row.dcacheMissRate)
           << ",\"l2_miss_rate\":" << num(row.l2MissRate)
           << ",\"clusters\":[";
        for (std::size_t c = 0; c < row.clusters.size(); ++c) {
            const auto &cl = row.clusters[c];
            os << (c ? "," : "") << "{\"queue_mean\":" << num(cl.queueMean)
               << ",\"queue_p50\":" << cl.queueP50
               << ",\"queue_p99\":" << cl.queueP99
               << ",\"queue_cap\":" << cl.queueCap
               << ",\"otb_mean\":" << num(cl.otbMean)
               << ",\"rtb_mean\":" << num(cl.rtbMean) << "}";
        }
        os << "]}\n";
    }
}

void
PeriodicSampler::writeCsv(std::ostream &os) const
{
    const std::size_t nclusters =
        rows_.empty() ? 0 : rows_.front().clusters.size();
    os << "cycle_begin,cycle_end,retired,dispatched,ipc,rob_mean,"
          "icache_miss_rate,dcache_miss_rate,l2_miss_rate";
    for (std::size_t c = 0; c < nclusters; ++c)
        os << ",queue_mean_c" << c << ",queue_p50_c" << c
           << ",queue_p99_c" << c << ",otb_mean_c" << c << ",rtb_mean_c"
           << c;
    os << "\n";
    for (const auto &row : rows_) {
        os << row.cycleBegin << ',' << row.cycleEnd << ',' << row.retired
           << ',' << row.dispatched << ',' << num(row.ipc) << ','
           << num(row.robMean) << ',' << num(row.icacheMissRate) << ','
           << num(row.dcacheMissRate) << ',' << num(row.l2MissRate);
        for (const auto &cl : row.clusters)
            os << ',' << num(cl.queueMean) << ',' << cl.queueP50 << ','
               << cl.queueP99 << ',' << num(cl.otbMean) << ','
               << num(cl.rtbMean);
        os << "\n";
    }
}

} // namespace mca::obs
