/**
 * @file
 * Cycle-stack (CPI-stack) accounting for the multicluster processor.
 *
 * Every retire slot of every simulated cycle is attributed to exactly
 * one cause: slots that retire an instruction count as Base, and the
 * empty slots of a cycle are charged to whatever is blocking the
 * oldest in-flight instruction (or the front end, when the retire
 * window is empty). The taxonomy mirrors the paper's §2.1 execution
 * scenarios: the transfer-buffer and remote-register causes are the
 * mechanisms scenarios 2-5 lose cycles to, so a dual-vs-single
 * cycle-stack diff attributes the Table-2 slowdown to specific
 * scenarios instead of a single end-of-run number.
 *
 * Hard conservation invariant: the per-cause slot-cycles of a run sum
 * to exactly `slots × cycles`. `CycleStack::conserved()` checks it and
 * the test suite asserts it on every scenario and campaign job.
 *
 * Header-only on purpose: core::Processor writes into an attached
 * CycleStack without linking against the obs library (which itself
 * depends on core for the Perfetto exporter).
 */

#ifndef MCA_OBS_CYCLE_STACK_HH
#define MCA_OBS_CYCLE_STACK_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "support/types.hh"

namespace mca::obs
{

/** Why a retire slot went unused this cycle (one cause per cycle). */
enum class StallCause : unsigned
{
    /** Slot retired an instruction, or the head is executing normally
     *  (plain data dependencies and execution latency). */
    Base = 0,
    /** Front end stalled: every needed dispatch-queue entry is taken. */
    DispatchQueue,
    /** Operand transfer buffer full: a forwarding slave cannot issue. */
    OperandBuffer,
    /** Result transfer buffer full: the master cannot issue. */
    ResultBuffer,
    /** Waiting on a cross-cluster operand or result transfer. */
    RemoteReg,
    /** A scenario-5 slave sits suspended waiting for its result. */
    SlaveSuspend,
    /** Fetch is waiting on an instruction-cache fill. */
    IcacheMiss,
    /** The head is a load whose L1 miss was served by the shared L2
     *  (zero in paper mode, which has no L2). */
    DcacheL2,
    /** The head is a load whose miss went all the way to memory. The
     *  pre-refactor DcacheMiss cause equals DcacheL2 + DcacheMem. */
    DcacheMem,
    /** Squash recovery: branch-mispredict or replay-exception refill. */
    Squash,
    /** Pipeline draining after the trace ended (plus warm-up residue). */
    Drain,
};

inline constexpr std::size_t kNumStallCauses = 11;

/** Short machine-readable cause name ("base", "otb_wait", ...). */
inline const char *
stallCauseName(StallCause cause)
{
    switch (cause) {
      case StallCause::Base: return "base";
      case StallCause::DispatchQueue: return "dq_full";
      case StallCause::OperandBuffer: return "otb_wait";
      case StallCause::ResultBuffer: return "rtb_full";
      case StallCause::RemoteReg: return "remote_reg";
      case StallCause::SlaveSuspend: return "slave_susp";
      case StallCause::IcacheMiss: return "icache_miss";
      case StallCause::DcacheL2: return "dcache_l2";
      case StallCause::DcacheMem: return "dcache_mem";
      case StallCause::Squash: return "squash";
      case StallCause::Drain: return "drain";
    }
    return "<bad-cause>";
}

/** One-line human description of a cause (docs, table headers). */
inline const char *
stallCauseDesc(StallCause cause)
{
    switch (cause) {
      case StallCause::Base:
        return "committing, or plain execution latency";
      case StallCause::DispatchQueue:
        return "dispatch queue full (front-end back-pressure)";
      case StallCause::OperandBuffer:
        return "operand transfer buffer full";
      case StallCause::ResultBuffer:
        return "result transfer buffer full";
      case StallCause::RemoteReg:
        return "cross-cluster operand/result transfer in flight";
      case StallCause::SlaveSuspend:
        return "slave suspended awaiting the forwarded result";
      case StallCause::IcacheMiss: return "instruction-cache fill";
      case StallCause::DcacheL2:
        return "data-cache miss served by the shared L2";
      case StallCause::DcacheMem:
        return "data-cache miss served by memory";
      case StallCause::Squash:
        return "mispredict or replay squash refill";
      case StallCause::Drain: return "trace ended, pipeline draining";
    }
    return "<bad-cause>";
}

/**
 * Accumulated per-cause slot-cycles of one run. The processor calls
 * account() once per stepped cycle — or accountIdle() for a block of
 * fast-forwarded idle cycles — so every simulated cycle is attributed
 * exactly once; everything else is read-side.
 */
struct CycleStack
{
    std::array<std::uint64_t, kNumStallCauses> slotCycles{};
    /** Retire slots per cycle (the machine's retire width). */
    unsigned slots = 0;
    /** Cycles attributed so far. */
    Cycle cycles = 0;

    /**
     * Attribute one cycle: `retired` slots to Base, the remaining
     * `slots - retired` to `cause`.
     */
    void
    account(unsigned retired, StallCause cause)
    {
        slotCycles[static_cast<std::size_t>(StallCause::Base)] += retired;
        slotCycles[static_cast<std::size_t>(cause)] += slots - retired;
        ++cycles;
    }

    /**
     * Attribute `count` consecutive idle cycles (zero retire slots
     * used) to `cause` in bulk. Used by the idle fast-forward; keeps
     * the conservation invariant exact: count × slots slot-cycles are
     * added along with count cycles.
     */
    void
    accountIdle(StallCause cause, Cycle count)
    {
        slotCycles[static_cast<std::size_t>(cause)] +=
            static_cast<std::uint64_t>(slots) * count;
        cycles += count;
    }

    std::uint64_t
    at(StallCause cause) const
    {
        return slotCycles[static_cast<std::size_t>(cause)];
    }

    std::uint64_t
    totalSlotCycles() const
    {
        std::uint64_t total = 0;
        for (auto v : slotCycles)
            total += v;
        return total;
    }

    /** Cause total expressed in whole-machine cycles. */
    double
    cyclesOf(StallCause cause) const
    {
        return slots == 0 ? 0.0
                          : static_cast<double>(at(cause)) /
                                static_cast<double>(slots);
    }

    /** The conservation invariant: causes sum to slots × cycles. */
    bool
    conserved() const
    {
        return totalSlotCycles() ==
               static_cast<std::uint64_t>(slots) * cycles;
    }

    void
    reset()
    {
        slotCycles.fill(0);
        cycles = 0;
    }
};

} // namespace mca::obs

#endif // MCA_OBS_CYCLE_STACK_HH
