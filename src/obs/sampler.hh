/**
 * @file
 * Interval time-series sampling.
 *
 * A PeriodicSampler consumes one CycleObs per simulated cycle and
 * closes an interval every N cycles, producing a row with the
 * interval's IPC, cache miss rates, and per-cluster occupancy
 * statistics (mean / p50 / p99 of the dispatch queue, mean transfer-
 * buffer occupancy). Rows serialize as JSONL (one object per line) or
 * CSV; both formats are documented in docs/observability.md.
 */

#ifndef MCA_OBS_SAMPLER_HH
#define MCA_OBS_SAMPLER_HH

#include <ostream>
#include <vector>

#include "obs/snapshot.hh"
#include "support/stats.hh"
#include "support/types.hh"

namespace mca::obs
{

/** Per-cluster occupancy statistics of one interval. */
struct IntervalClusterRow
{
    double queueMean = 0.0;
    std::uint64_t queueP50 = 0;
    std::uint64_t queueP99 = 0;
    unsigned queueCap = 0;
    double otbMean = 0.0;
    double rtbMean = 0.0;
};

/** One closed sampling interval. */
struct IntervalRow
{
    /** First and one-past-last cycle of the interval. */
    Cycle cycleBegin = 0;
    Cycle cycleEnd = 0;
    std::uint64_t retired = 0;
    std::uint64_t dispatched = 0;
    double ipc = 0.0;
    double robMean = 0.0;
    double icacheMissRate = 0.0;
    double dcacheMissRate = 0.0;
    /** Shared-L2 local miss rate; 0 when the machine has no L2. */
    double l2MissRate = 0.0;
    std::vector<IntervalClusterRow> clusters;
};

class PeriodicSampler
{
  public:
    /** @param period  Interval length in cycles (>= 1). */
    explicit PeriodicSampler(Cycle period);

    /** Feed one cycle's observation; call exactly once per cycle. */
    void tick(const CycleObs &obs);

    /** Close the trailing partial interval, if any. */
    void finish();

    Cycle period() const { return period_; }
    const std::vector<IntervalRow> &rows() const { return rows_; }

    /** One JSON object per row, one row per line. */
    void writeJsonl(std::ostream &os) const;
    /** Header plus one CSV row per interval. */
    void writeCsv(std::ostream &os) const;

  private:
    void openInterval(const CycleObs &obs);
    void closeInterval(const CycleObs &obs);

    Cycle period_;
    bool open_ = false;
    Cycle ticks_ = 0;

    // Cumulative totals at the interval's start (for deltas).
    CycleObs base_;
    // Intra-interval accumulators.
    std::vector<Distribution> queueOcc_;
    double otbSum_ = 0.0, rtbSum_ = 0.0, robSum_ = 0.0;
    std::vector<double> otbSumPer_, rtbSumPer_;

    std::vector<IntervalRow> rows_;
    CycleObs last_;
};

} // namespace mca::obs

#endif // MCA_OBS_SAMPLER_HH
