/**
 * @file
 * Minimal validating JSON parser (RFC 8259 subset, no DOM).
 *
 * Used by the test suite and smoke checks to verify that the trace,
 * interval, and statistics emitters produce well-formed JSON without
 * pulling in an external JSON dependency. Validates structure only —
 * numbers, strings (with escapes), literals, arrays, objects — and
 * reports the byte offset of the first error.
 */

#ifndef MCA_OBS_JSON_HH
#define MCA_OBS_JSON_HH

#include <string>
#include <string_view>

namespace mca::obs
{

/**
 * True if `text` is exactly one valid JSON value (plus surrounding
 * whitespace). On failure, *error (if non-null) describes the problem
 * and the byte offset where it was detected.
 */
bool isValidJson(std::string_view text, std::string *error = nullptr);

/**
 * True if every non-empty line of `text` is a valid JSON value
 * (JSON-lines). On failure, *error names the offending line.
 */
bool isValidJsonLines(std::string_view text, std::string *error = nullptr);

} // namespace mca::obs

#endif // MCA_OBS_JSON_HH
