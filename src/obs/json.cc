#include "obs/json.hh"

#include <cctype>
#include <cstddef>

namespace mca::obs
{

namespace
{

/** Recursive-descent validator over a string_view cursor. */
class Validator
{
  public:
    explicit Validator(std::string_view text) : text_(text) {}

    bool
    run(std::string *error)
    {
        skipWs();
        if (!value()) {
            fill(error);
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            err_ = "trailing characters after the JSON value";
            fill(error);
            return false;
        }
        return true;
    }

  private:
    bool
    fail(const char *what)
    {
        if (err_.empty())
            err_ = what;
        return false;
    }

    void
    fill(std::string *error) const
    {
        if (error)
            *error = err_ + " at byte " + std::to_string(pos_);
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    bool eof() const { return pos_ >= text_.size(); }

    void
    skipWs()
    {
        while (!eof() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                          text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool
    string()
    {
        if (peek() != '"')
            return fail("expected '\"'");
        ++pos_;
        while (!eof()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c == '\\') {
                ++pos_;
                if (eof())
                    return fail("truncated escape");
                const char e = text_[pos_];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i)
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i])))
                            return fail("bad \\u escape");
                    pos_ += 4;
                } else if (e != '"' && e != '\\' && e != '/' &&
                           e != 'b' && e != 'f' && e != 'n' &&
                           e != 'r' && e != 't') {
                    return fail("bad escape character");
                }
                ++pos_;
            } else {
                ++pos_;
            }
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("malformed number");
        if (peek() == '0') {
            ++pos_;
        } else {
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("malformed fraction");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("malformed exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    array()
    {
        ++pos_; // consume '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                skipWs();
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    object()
    {
        ++pos_; // consume '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    value()
    {
        if (++depth_ > 256)
            return fail("nesting too deep");
        bool ok = false;
        skipWs();
        switch (peek()) {
        case '{': ok = object(); break;
        case '[': ok = array(); break;
        case '"': ok = string(); break;
        case 't': ok = literal("true"); break;
        case 'f': ok = literal("false"); break;
        case 'n': ok = literal("null"); break;
        case '\0': ok = fail("unexpected end of input"); break;
        default: ok = number(); break;
        }
        --depth_;
        return ok;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string err_;
};

} // namespace

bool
isValidJson(std::string_view text, std::string *error)
{
    return Validator(text).run(error);
}

bool
isValidJsonLines(std::string_view text, std::string *error)
{
    std::size_t lineno = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string_view::npos)
            end = text.size();
        ++lineno;
        const std::string_view line = text.substr(start, end - start);
        if (!line.empty() && line.find_first_not_of(" \t\r") !=
                                 std::string_view::npos) {
            std::string inner;
            if (!isValidJson(line, &inner)) {
                if (error)
                    *error = "line " + std::to_string(lineno) + ": " +
                             inner;
                return false;
            }
        }
        if (end == text.size())
            break;
        start = end + 1;
    }
    return true;
}

} // namespace mca::obs
