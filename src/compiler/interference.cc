#include "compiler/interference.hh"

#include "support/panic.hh"

namespace mca::compiler
{

InterferenceGraph::InterferenceGraph(std::vector<prog::ValueId> nodes,
                                     std::size_t total_values)
    : nodes_(std::move(nodes)),
      nodeIndex_(total_values, ~std::size_t{0})
{
    for (std::size_t i = 0; i < nodes_.size(); ++i)
        nodeIndex_[nodes_[i]] = i;
    adj_.assign(nodes_.size(), BitSet(nodes_.size()));
}

std::size_t
InterferenceGraph::nodeOf(prog::ValueId v) const
{
    return v < nodeIndex_.size() ? nodeIndex_[v] : ~std::size_t{0};
}

void
InterferenceGraph::addEdge(prog::ValueId a, prog::ValueId b)
{
    const std::size_t na = nodeOf(a);
    const std::size_t nb = nodeOf(b);
    if (na == ~std::size_t{0} || nb == ~std::size_t{0} || na == nb)
        return;
    adj_[na].set(nb);
    adj_[nb].set(na);
}

bool
InterferenceGraph::interferes(prog::ValueId a, prog::ValueId b) const
{
    const std::size_t na = nodeOf(a);
    const std::size_t nb = nodeOf(b);
    if (na == ~std::size_t{0} || nb == ~std::size_t{0})
        return false;
    return adj_[na].test(nb);
}

InterferenceGraph
buildInterference(const prog::Program &prog, prog::FunctionId fnid,
                  isa::RegClass cls, const ProgramLiveness &live,
                  const BitSet &spilled)
{
    const auto &fn = prog.functions[fnid];
    const auto &fl = live.functions[fnid];
    const std::size_t nvals = prog.values.size();

    // Collect this function's candidate values of the requested class.
    BitSet member(nvals);
    auto consider = [&](prog::ValueId v) {
        if (v == prog::kNoValue)
            return;
        const auto &info = prog.values[v];
        if (info.cls != cls || info.globalCandidate || spilled.test(v))
            return;
        member.set(v);
    };
    for (const auto &blk : fn.blocks)
        for (const auto &in : blk.instrs) {
            consider(in.dest);
            for (prog::ValueId s : in.srcs)
                consider(s);
        }

    std::vector<prog::ValueId> nodes;
    member.forEach([&](std::size_t v) {
        nodes.push_back(static_cast<prog::ValueId>(v));
    });
    InterferenceGraph graph(std::move(nodes), nvals);

    // Per-block backward scan.
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        BitSet liveNow = fl.liveOut[b];
        const auto &instrs = fn.blocks[b].instrs;
        for (std::size_t i = instrs.size(); i-- > 0;) {
            const auto &in = instrs[i];
            if (in.dest != prog::kNoValue) {
                const prog::ValueId d = in.dest;
                if (member.test(d)) {
                    liveNow.forEach([&](std::size_t v) {
                        if (member.test(v))
                            graph.addEdge(d,
                                          static_cast<prog::ValueId>(v));
                    });
                }
                liveNow.reset(d);
            }
            for (prog::ValueId s : in.srcs)
                if (s != prog::kNoValue)
                    liveNow.set(s);
        }
    }

    // Values live into the entry block pairwise interfere.
    std::vector<prog::ValueId> entryLive;
    fl.liveIn[prog::Function::kEntry].forEach([&](std::size_t v) {
        if (member.test(v))
            entryLive.push_back(static_cast<prog::ValueId>(v));
    });
    for (std::size_t i = 0; i < entryLive.size(); ++i)
        for (std::size_t j = i + 1; j < entryLive.size(); ++j)
            graph.addEdge(entryLive[i], entryLive[j]);

    return graph;
}

} // namespace mca::compiler
