/**
 * @file
 * The compiler's pass manager.
 *
 * Each stage of the paper's §3.1 pipeline is a named Pass running over
 * a shared PassContext: the working IL copy, the CompileOptions, the
 * CompileOutput being assembled, and the growing prog::VerifyOptions
 * the partition/regalloc passes extend with their results. The
 * PassManager owns the sequence: it times every pass, records IR-delta
 * counters (blocks, instructions, live ranges, spill ops) into both
 * CompileOutput::passStats and the context's StatGroup, captures
 * `--dump-after` snapshots, and — under CompileOptions::verifyIr —
 * runs prog::verifyIR() on the input and after every pass, throwing
 * std::runtime_error naming the offending pass on the first violation.
 *
 * buildPipeline() translates CompileOptions into the exact pass
 * sequence the old hardcoded pipeline ran, so compile() output is
 * bit-identical to the pre-refactor compiler.
 */

#ifndef MCA_COMPILER_PASS_HH
#define MCA_COMPILER_PASS_HH

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/pipeline.hh"
#include "prog/verify.hh"
#include "support/stats.hh"

namespace mca::compiler
{

/**
 * Shared state one compilation threads through its passes. The working
 * program starts as a copy of the input; the regalloc pass replaces it
 * with the allocator's rewritten (spill-expanded) IL so later passes
 * and verification see what will actually be emitted.
 */
struct PassContext
{
    PassContext(const prog::Program &input, const CompileOptions &opts,
                CompileOutput &output)
        : program(input), options(opts), out(output)
    {}

    prog::Program program;
    const CompileOptions &options;
    CompileOutput &out;

    /** Pass-timing / IR-delta counters (mirrors out.passStats). */
    StatGroup stats{"compile"};

    /**
     * What verifyIR() should check from here on; the partition and
     * regalloc passes extend this with their assignment/coloring.
     */
    prog::VerifyOptions verify;
};

/** One named, self-describing compilation stage. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable pass name (the `--dump-after` / `--list-passes` key). */
    virtual std::string_view name() const = 0;

    /** One-line description for `--list-passes`. */
    virtual std::string_view description() const = 0;

    virtual void run(PassContext &ctx) = 0;

    /**
     * Deterministic text snapshot for `--dump-after` (the working IL by
     * default; the emit pass dumps the machine binary instead).
     */
    virtual std::string dump(const PassContext &ctx) const;
};

/** Name + description of one registered pass. */
struct PassInfo
{
    std::string_view name;
    std::string_view description;
};

/** Every pass the pipeline can run, in canonical pipeline order. */
const std::vector<PassInfo> &allPasses();

/** True if `name` names a registered pass. */
bool isPassName(std::string_view name);

/**
 * The pass sequence for these options — exactly the stages the options
 * enable, in pipeline order.
 */
std::vector<std::unique_ptr<Pass>> buildPipeline(
    const CompileOptions &options);

/**
 * Register `<prefix>.<NN>_<pass>.{wall_us,blocks,insts,values,
 * spill_ops}` counters for every executed pass — how per-pass records
 * reach a stats registry (and its src/obs JSON dump). The PassManager
 * calls this on its own context group; mcasim --pass-stats re-exports
 * into the simulation registry.
 */
void exportPassStats(const std::vector<PassStat> &passes,
                     StatGroup &group,
                     const std::string &prefix = "pass");

/**
 * Register `<prefix>.{cut_weight,total_weight,balance_x1000,fm_gain,
 * fm_passes,coarsen_levels,nodes,clusters}` counters for one
 * partitioning run — the partition pass's quality record, exported
 * next to the per-pass counters for any clustered scheduler.
 */
void exportPartitionStats(const PartitionStats &stats, StatGroup &group,
                          const std::string &prefix = "partition");

/** Runs a pass sequence over a context; see the file comment. */
class PassManager
{
  public:
    /** `verify_ir`: run prog::verifyIR between passes (throws). */
    explicit PassManager(bool verify_ir) : verifyIr_(verify_ir) {}

    void
    add(std::unique_ptr<Pass> pass)
    {
        passes_.push_back(std::move(pass));
    }

    const std::vector<std::unique_ptr<Pass>> &passes() const
    {
        return passes_;
    }

    /**
     * Run every pass in order. Throws std::runtime_error if a pass (or
     * the input program) fails IR verification under verify_ir.
     */
    void run(PassContext &ctx) const;

  private:
    bool verifyIr_;
    std::vector<std::unique_ptr<Pass>> passes_;
};

} // namespace mca::compiler

#endif // MCA_COMPILER_PASS_HH
