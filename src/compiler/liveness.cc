#include "compiler/liveness.hh"

#include "support/panic.hh"

namespace mca::compiler
{

namespace
{

/** Apply one instruction's uses/defs to block-local use/def sets. */
void
accumulateUseDef(const prog::Instr &in, BitSet &use, BitSet &def)
{
    for (prog::ValueId s : in.srcs)
        if (s != prog::kNoValue && !def.test(s))
            use.set(s);
    if (in.dest != prog::kNoValue)
        def.set(in.dest);
}

} // namespace

ProgramLiveness
computeLiveness(const prog::Program &prog)
{
    const std::size_t nvals = prog.values.size();
    ProgramLiveness result;
    result.functions.resize(prog.functions.size());

    for (std::size_t f = 0; f < prog.functions.size(); ++f) {
        const auto &fn = prog.functions[f];
        auto &fl = result.functions[f];
        const std::size_t nblocks = fn.blocks.size();
        fl.use.assign(nblocks, BitSet(nvals));
        fl.def.assign(nblocks, BitSet(nvals));
        fl.liveIn.assign(nblocks, BitSet(nvals));
        fl.liveOut.assign(nblocks, BitSet(nvals));

        for (std::size_t b = 0; b < nblocks; ++b)
            for (const auto &in : fn.blocks[b].instrs)
                accumulateUseDef(in, fl.use[b], fl.def[b]);

        // Backward iterative dataflow to a fixed point.
        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t bi = nblocks; bi-- > 0;) {
                const auto &blk = fn.blocks[bi];
                BitSet out(nvals);
                for (prog::BlockId s : blk.succs)
                    out.unionWith(fl.liveIn[s]);
                if (!(out == fl.liveOut[bi])) {
                    fl.liveOut[bi] = out;
                    changed = true;
                }
                BitSet in = fl.liveOut[bi];
                in.subtract(fl.def[bi]);
                in.unionWith(fl.use[bi]);
                if (!(in == fl.liveIn[bi])) {
                    fl.liveIn[bi] = std::move(in);
                    changed = true;
                }
            }
        }
    }
    return result;
}

BitSet
callCrossingValues(const prog::Program &prog, const ProgramLiveness &live)
{
    BitSet crossing(prog.values.size());
    for (std::size_t f = 0; f < prog.functions.size(); ++f) {
        const auto &fn = prog.functions[f];
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            const auto &blk = fn.blocks[b];
            if (blk.terminatorOp() != isa::Op::Jsr)
                continue;
            // Everything live out of a call block is live across the
            // call (the Jsr is the terminator, so liveOut is exactly the
            // set live at the call).
            live.functions[f].liveOut[b].forEach([&](std::size_t v) {
                if (!prog.values[v].globalCandidate)
                    crossing.set(v);
            });
        }
    }
    return crossing;
}

void
checkValueLocality(const prog::Program &prog)
{
    constexpr std::uint32_t kUnseen = ~std::uint32_t{0};
    std::vector<std::uint32_t> owner(prog.values.size(), kUnseen);

    auto touch = [&](prog::ValueId v, std::uint32_t f) {
        if (v == prog::kNoValue || prog.values[v].globalCandidate)
            return;
        if (owner[v] == kUnseen) {
            owner[v] = f;
        } else if (owner[v] != f) {
            MCA_PANIC("value ", v, " ('", prog.values[v].name,
                      "') referenced from functions ", owner[v], " and ", f,
                      "; non-global live ranges must be function-local");
        }
    };

    for (std::size_t f = 0; f < prog.functions.size(); ++f)
        for (const auto &blk : prog.functions[f].blocks)
            for (const auto &in : blk.instrs) {
                touch(in.dest, static_cast<std::uint32_t>(f));
                for (prog::ValueId s : in.srcs)
                    touch(s, static_cast<std::uint32_t>(f));
            }
}

} // namespace mca::compiler
