/**
 * @file
 * Interference graph construction.
 *
 * One graph per (function, register class); nodes are the function's live
 * ranges of that class. Built by the standard backward scan: at each
 * definition point the defined value interferes with everything currently
 * live of the same class, and all values live into the entry block
 * pairwise interfere (they carry distinct data from region start).
 */

#ifndef MCA_COMPILER_INTERFERENCE_HH
#define MCA_COMPILER_INTERFERENCE_HH

#include <vector>

#include "compiler/liveness.hh"
#include "prog/cfg.hh"
#include "support/bitset.hh"

namespace mca::compiler
{

/** Interference graph over a dense node renumbering of live ranges. */
class InterferenceGraph
{
  public:
    /** Create a graph over the given values (dense nodes 0..n-1). */
    explicit InterferenceGraph(std::vector<prog::ValueId> nodes,
                               std::size_t total_values);

    std::size_t numNodes() const { return nodes_.size(); }

    /** Original ValueId of node n. */
    prog::ValueId valueOf(std::size_t n) const { return nodes_[n]; }

    /** Dense node of value v, or SIZE_MAX if v is not in this graph. */
    std::size_t nodeOf(prog::ValueId v) const;

    void addEdge(prog::ValueId a, prog::ValueId b);
    bool interferes(prog::ValueId a, prog::ValueId b) const;

    /** Degree of node n. */
    std::size_t degree(std::size_t n) const { return adj_[n].count(); }

    /** Iterate the neighbours (dense node ids) of node n. */
    template <typename Fn>
    void
    forEachNeighbor(std::size_t n, Fn &&fn) const
    {
        adj_[n].forEach(fn);
    }

  private:
    std::vector<prog::ValueId> nodes_;
    std::vector<std::size_t> nodeIndex_; // ValueId -> dense node or MAX
    std::vector<BitSet> adj_;            // dense adjacency matrix rows
};

/**
 * Build the interference graph for one function and register class.
 *
 * @param spilled  Values already assigned to memory (excluded as nodes —
 *                 they no longer compete for registers).
 */
InterferenceGraph
buildInterference(const prog::Program &prog, prog::FunctionId fn,
                  isa::RegClass cls, const ProgramLiveness &live,
                  const BitSet &spilled);

} // namespace mca::compiler

#endif // MCA_COMPILER_INTERFERENCE_HH
