/**
 * @file
 * Live-range partitioning: the paper's "local scheduler" (§3.5).
 *
 * The local scheduler decides, for every local-register-candidate live
 * range, the cluster it should be assigned to, so that the run-time
 * instruction distribution is balanced in the vicinity of every
 * instruction while the number of dual-distributed instructions stays
 * small.
 *
 * Algorithm (paper §3.5):
 *  1. Sort all basic blocks by estimated executions of their first
 *     instruction (descending), breaking ties by static instruction count
 *     (descending).
 *  2. Remove the top block and traverse its instructions bottom-up,
 *     in order. For each instruction that writes an unassigned local
 *     live range, pick a cluster:
 *       - if the estimated instruction distribution in the vicinity of
 *         the instruction is unbalanced (spread greater than a
 *         compile-time threshold), pick the under-subscribed cluster;
 *       - otherwise pick the cluster preferred by the majority of the
 *         instructions that read or write the live range (an instruction
 *         prefers the cluster that lets it be single-distributed).
 *  3. Repeat until all blocks are visited.
 *
 * The imbalance estimate is per-basic-block (paper §3.3): within the
 * block being traversed, every other instruction with at least one
 * already-assigned operand is counted toward the cluster(s) it would be
 * distributed to.
 */

#ifndef MCA_COMPILER_PARTITION_HH
#define MCA_COMPILER_PARTITION_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "prog/cfg.hh"

namespace mca::compiler
{

/** Per-value cluster assignment produced by a partitioner. */
struct ClusterAssignment
{
    static constexpr std::int8_t kUnassigned = -1;
    /**
     * Hard ceiling on cluster indices: assignments are stored as
     * int8_t, so any partitioner accepts at most 127 clusters.
     * PartitionOptions::validate() enforces this before the storage
     * could silently wrap.
     */
    static constexpr unsigned kMaxClusters = 127;

    std::vector<std::int8_t> cluster;

    explicit ClusterAssignment(std::size_t nvalues = 0)
        : cluster(nvalues, kUnassigned)
    {}

    /**
     * Cluster of `v`, or kUnassigned. A ValueId past the end of the
     * table is deliberately reported as unassigned rather than
     * asserted: passes that grow the value table (spill temporaries)
     * query the pre-growth assignment for the new ids.
     */
    int
    clusterOf(prog::ValueId v) const
    {
        return v < cluster.size() ? cluster[v] : kUnassigned;
    }

    bool
    assigned(prog::ValueId v) const
    {
        return clusterOf(v) != kUnassigned;
    }
};

/** Tuning knobs shared by every partitioner. */
struct PartitionOptions
{
    unsigned numClusters = 2;
    /**
     * Distribution-imbalance threshold (instructions). The paper treats
     * this as a compile-time constant; DESIGN.md picks 4 and the
     * ablation bench sweeps it.
     */
    unsigned imbalanceThreshold = 4;

    /**
     * Throw std::runtime_error unless 1 <= numClusters <=
     * ClusterAssignment::kMaxClusters. Every partitioner calls this on
     * entry; the tools validate at parse time for a friendlier error.
     */
    void validate() const;
};

/** Record of the scheduler's decision order (Figure 6 reproduction). */
struct PartitionTrace
{
    /** Blocks in traversal order. */
    std::vector<std::pair<prog::FunctionId, prog::BlockId>> blockOrder;
    /** Live ranges in cluster-assignment order. */
    std::vector<prog::ValueId> assignmentOrder;
};

/**
 * Run the local scheduler over a whole program.
 *
 * Global-register candidates are left unassigned (they are replicated in
 * every cluster). Local values never written by any instruction (pure
 * live-ins) are assigned in a final majority-vote pass. Works for any
 * cluster count >= 1 (N = 1 degenerates to everything on cluster 0).
 */
ClusterAssignment localSchedule(const prog::Program &prog,
                                const PartitionOptions &options,
                                PartitionTrace *trace = nullptr);

/**
 * Round-robin partitioner: assigns live ranges to clusters in declaration
 * order with no balance or affinity analysis. Used as an ablation point
 * between "native binary" and "local scheduler".
 */
ClusterAssignment roundRobinSchedule(const prog::Program &prog,
                                     const PartitionOptions &options);

/** Count of clusters an instruction would be distributed to (0 = unknown). */
unsigned estimateDistributionWidth(const prog::Instr &in,
                                   const prog::Program &prog,
                                   const ClusterAssignment &assignment,
                                   unsigned num_clusters);

} // namespace mca::compiler

#endif // MCA_COMPILER_PARTITION_HH
