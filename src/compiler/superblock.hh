/**
 * @file
 * Superblock formation (the paper's §6 future work).
 *
 * "Techniques such as superblock scheduling and trace scheduling might
 * be used to increase the number of instructions that can be jointly
 * scheduled, thus permitting a better estimation of the run-time
 * distribution of the workload."
 *
 * This pass enlarges basic blocks in two profile-guided steps:
 *
 *  1. *Tail duplication*: a join block (multiple predecessors) is
 *     cloned for each of its cold incoming edges, leaving the hot
 *     predecessor as the join's only entry. Clones share the
 *     original's live ranges, branch models, and address streams, so
 *     the program's dynamic instruction sequence is unchanged — the
 *     outcomes and addresses are drawn in the same execution order
 *     regardless of which static copy runs.
 *  2. *Straightening*: a block whose single successor has a single
 *     predecessor is merged with it (dropping the unconditional branch
 *     between them), producing the long blocks the local scheduler's
 *     per-block imbalance estimate needs.
 *
 * Growth is bounded by max_growth x the function's original size.
 */

#ifndef MCA_COMPILER_SUPERBLOCK_HH
#define MCA_COMPILER_SUPERBLOCK_HH

#include <cstdint>

#include "prog/cfg.hh"

namespace mca::compiler
{

struct SuperblockStats
{
    std::uint64_t tailsDuplicated = 0;
    std::uint64_t blocksMerged = 0;
    std::uint64_t instsAdded = 0;
};

/** Run tail duplication + straightening; re-finalizes the program. */
SuperblockStats formSuperblocks(prog::Program &prog,
                                double max_growth = 1.5);

} // namespace mca::compiler

#endif // MCA_COMPILER_SUPERBLOCK_HH
