#include "compiler/pipeline.hh"

#include "exec/trace.hh"
#include "support/panic.hh"

namespace mca::compiler
{

isa::RegisterMap
CompileOutput::hardwareMap(unsigned num_clusters) const
{
    isa::RegisterMap map(num_clusters);
    for (const auto &reg : alloc.globalRegs)
        map.setGlobal(reg);
    return map;
}

CompileOutput
compile(const prog::Program &prog, const CompileOptions &options)
{
    CompileOutput out;
    prog::Program work = prog;

    // Step 1: conventional optimizations.
    if (options.optimize)
        out.optStats = optimizeProgram(work);

    // Optional loop unrolling (paper §6 future work).
    if (options.unrollFactor >= 2)
        out.unrollStats = unrollLoops(work, options.unrollFactor);

    // Optional superblock formation (paper §6 future work).
    if (options.superblocks)
        out.superblockStats = formSuperblocks(work);

    // Step 2: prepass code scheduling.
    if (options.listSchedule) {
        ScheduleOptions sopt;
        sopt.width = options.listScheduleWidth;
        out.scheduleStats = listSchedule(work, sopt);
    }

    // Profiling: measured execution estimates for the partitioner.
    if (options.profileFirst &&
        options.scheduler != SchedulerKind::Native) {
        const auto profile = exec::profileProgram(
            work, options.profileSeed, options.profileMaxInsts);
        exec::applyProfile(work, profile);
    }

    // Step 4: live-range partitioning.
    PartitionOptions popt;
    popt.numClusters = options.numClusters;
    popt.imbalanceThreshold = options.imbalanceThreshold;
    switch (options.scheduler) {
      case SchedulerKind::Native:
        // No partitioning: cluster-unaware allocation.
        break;
      case SchedulerKind::Local:
        MCA_ASSERT(options.numClusters >= 2,
                   "local scheduler needs a clustered target");
        out.partition = localSchedule(work, popt, &out.partitionTrace);
        break;
      case SchedulerKind::RoundRobin:
        MCA_ASSERT(options.numClusters >= 2,
                   "round-robin needs a clustered target");
        out.partition = roundRobinSchedule(work, popt);
        break;
    }

    // Step 5: register allocation.
    AllocOptions aopt;
    aopt.regMap = isa::RegisterMap(
        options.scheduler == SchedulerKind::Native ? 1
                                                   : options.numClusters);
    aopt.assignment = out.partition;
    out.alloc = allocateRegisters(work, aopt);

    // Step 6: machine-code emission.
    out.binary = emitMachine(out.alloc);
    return out;
}

} // namespace mca::compiler
