#include "compiler/pipeline.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "compiler/pass.hh"

namespace mca::compiler
{

namespace
{

const char *
schedulerName(SchedulerKind kind)
{
    switch (kind) {
    case SchedulerKind::Native: return "native";
    case SchedulerKind::Local: return "local";
    case SchedulerKind::RoundRobin: return "roundrobin";
    case SchedulerKind::Multilevel: return "multilevel";
    }
    return "unknown";
}

} // namespace

std::string
CompileOptions::canonicalKey() const
{
    std::ostringstream oss;
    oss << "scheduler=" << schedulerName(scheduler)
        << ";clusters=" << numClusters
        << ";threshold=" << imbalanceThreshold
        << ";optimize=" << optimize
        << ";unroll=" << unrollFactor
        << ";superblocks=" << superblocks
        << ";list=" << listSchedule
        << ";width=" << listScheduleWidth
        << ";profile=" << profileFirst
        << ";profileSeed=" << profileSeed
        << ";profileMaxInsts=" << profileMaxInsts;
    return oss.str();
}

CompileOptions
compileOptionsFor(const std::string &scheduler, unsigned machine_clusters)
{
    CompileOptions copt;
    if (scheduler == "native") {
        copt.scheduler = SchedulerKind::Native;
        copt.numClusters = 1;
    } else if (scheduler == "roundrobin") {
        copt.scheduler = SchedulerKind::RoundRobin;
        copt.numClusters = std::max(2u, machine_clusters);
    } else if (scheduler == "local") {
        copt.scheduler = machine_clusters >= 2 ? SchedulerKind::Local
                                               : SchedulerKind::Native;
        copt.numClusters = machine_clusters;
    } else if (scheduler == "multilevel") {
        copt.scheduler = machine_clusters >= 2 ? SchedulerKind::Multilevel
                                               : SchedulerKind::Native;
        copt.numClusters = machine_clusters;
    } else {
        throw std::runtime_error("unknown scheduler '" + scheduler + "'");
    }
    return copt;
}

const std::vector<std::string> &
partitionerNames()
{
    static const std::vector<std::string> kNames = {"local", "roundrobin",
                                                    "multilevel"};
    return kNames;
}

isa::RegisterMap
CompileOutput::hardwareMap(unsigned num_clusters) const
{
    isa::RegisterMap map(num_clusters);
    for (const auto &reg : alloc.globalRegs)
        map.setGlobal(reg);
    return map;
}

const std::string *
CompileOutput::dumpFor(std::string_view pass) const
{
    for (const auto &[name, text] : dumps)
        if (name == pass)
            return &text;
    return nullptr;
}

CompileOutput
compile(const prog::Program &prog, const CompileOptions &options)
{
    CompileOutput out;
    PassContext ctx(prog, options, out);
    PassManager manager(options.verifyIr);
    for (auto &pass : buildPipeline(options))
        manager.add(std::move(pass));
    manager.run(ctx);
    return out;
}

} // namespace mca::compiler
