#include "compiler/affinity.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "compiler/liveness.hh"

namespace mca::compiler
{

namespace
{

/** Integer co-occurrence weight of one instruction in `blk`. */
std::uint64_t
blockUnitWeight(const prog::BasicBlock &blk)
{
    // +1 keeps zero-weight (never-profiled) blocks contributing, so
    // the graph shape does not depend on whether a profile ran.
    const double w = blk.weight;
    return 1 + (w > 0 ? static_cast<std::uint64_t>(std::llround(w)) : 0);
}

} // namespace

AffinityGraph
buildAffinityGraph(const prog::Program &prog)
{
    AffinityGraph graph;
    const std::size_t nvalues = prog.values.size();
    graph.nodeOf.assign(nvalues, AffinityGraph::kNoNode);
    graph.liveSpan.assign(nvalues, 0);

    // Liveness gives the node set (every local live range the program
    // references) and the diagnostic span per value.
    const ProgramLiveness live = computeLiveness(prog);
    BitSet referenced(nvalues);
    for (const auto &fn : live.functions)
        for (std::size_t b = 0; b < fn.use.size(); ++b) {
            referenced.unionWith(fn.use[b]);
            referenced.unionWith(fn.def[b]);
            for (prog::ValueId v = 0; v < nvalues; ++v)
                if (fn.liveIn[b].test(v) || fn.def[b].test(v))
                    ++graph.liveSpan[v];
        }

    for (prog::ValueId v = 0; v < nvalues; ++v) {
        if (!referenced.test(v) || prog.values[v].globalCandidate)
            continue;
        graph.nodeOf[v] = static_cast<std::uint32_t>(graph.nodeValue.size());
        graph.nodeValue.push_back(v);
    }

    const std::size_t n = graph.numNodes();
    graph.nodeWeight.assign(n, 0);
    graph.adj.assign(n, {});

    // One accumulator per undirected edge, keyed by (lo, hi).
    std::unordered_map<std::uint64_t, std::uint64_t> edges;
    auto edgeKey = [](std::uint32_t a, std::uint32_t b) {
        if (a > b)
            std::swap(a, b);
        return (static_cast<std::uint64_t>(a) << 32) | b;
    };

    std::uint32_t ops[3];
    for (const auto &fn : prog.functions)
        for (const auto &blk : fn.blocks) {
            const std::uint64_t w = blockUnitWeight(blk);
            for (const auto &in : blk.instrs) {
                unsigned nops = 0;
                auto collect = [&](prog::ValueId v) {
                    if (v == prog::kNoValue)
                        return;
                    const std::uint32_t node = graph.nodeOf[v];
                    if (node == AffinityGraph::kNoNode)
                        return;
                    for (unsigned i = 0; i < nops; ++i)
                        if (ops[i] == node)
                            return;
                    ops[nops++] = node;
                };
                collect(in.dest);
                collect(in.srcs[0]);
                collect(in.srcs[1]);
                if (in.dest != prog::kNoValue &&
                    graph.nodeOf[in.dest] != AffinityGraph::kNoNode)
                    graph.nodeWeight[graph.nodeOf[in.dest]] += w;
                for (unsigned i = 0; i < nops; ++i)
                    for (unsigned j = i + 1; j < nops; ++j)
                        edges[edgeKey(ops[i], ops[j])] += w;
            }
        }

    // Pure live-ins are never written; give them unit weight so the
    // balance constraint still sees them.
    for (std::size_t i = 0; i < n; ++i) {
        if (graph.nodeWeight[i] == 0)
            graph.nodeWeight[i] = 1;
        graph.totalNodeWeight += graph.nodeWeight[i];
    }

    for (const auto &[key, weight] : edges) {
        const auto a = static_cast<std::uint32_t>(key >> 32);
        const auto b = static_cast<std::uint32_t>(key & 0xffffffffu);
        graph.adj[a].push_back({b, weight});
        graph.adj[b].push_back({a, weight});
        graph.totalEdgeWeight += weight;
    }
    for (auto &list : graph.adj)
        std::sort(list.begin(), list.end(),
                  [](const AffinityGraph::Edge &x,
                     const AffinityGraph::Edge &y) { return x.to < y.to; });

    return graph;
}

std::uint64_t
cutWeight(const AffinityGraph &graph, const ClusterAssignment &assignment)
{
    std::uint64_t cut = 0;
    for (std::size_t u = 0; u < graph.numNodes(); ++u) {
        const int cu = assignment.clusterOf(graph.nodeValue[u]);
        if (cu < 0)
            continue;
        for (const auto &e : graph.adj[u]) {
            if (e.to <= u)
                continue;   // count each undirected edge once
            const int cv = assignment.clusterOf(graph.nodeValue[e.to]);
            if (cv >= 0 && cv != cu)
                cut += e.weight;
        }
    }
    return cut;
}

double
balanceOf(const AffinityGraph &graph, const ClusterAssignment &assignment,
          unsigned num_clusters)
{
    if (graph.numNodes() == 0 || num_clusters == 0 ||
        graph.totalNodeWeight == 0)
        return 0.0;
    std::vector<std::uint64_t> part(num_clusters, 0);
    for (std::size_t u = 0; u < graph.numNodes(); ++u) {
        const int c = assignment.clusterOf(graph.nodeValue[u]);
        if (c >= 0 && static_cast<unsigned>(c) < num_clusters)
            part[static_cast<unsigned>(c)] += graph.nodeWeight[u];
    }
    const std::uint64_t max = *std::max_element(part.begin(), part.end());
    const double ideal =
        static_cast<double>(graph.totalNodeWeight) / num_clusters;
    return static_cast<double>(max) / ideal;
}

} // namespace mca::compiler
