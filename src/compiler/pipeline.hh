/**
 * @file
 * The six-step compilation pipeline (paper §3.1).
 *
 *  1. conventional optimizations on the IL;
 *  2. prepass code scheduling;
 *  3. global-register candidate designation (done by the program
 *     builder: SP/GP live ranges carry the globalCandidate flag);
 *  4. live-range partitioning (the local scheduler);
 *  5. register allocation (graph coloring with spilling);
 *  6. machine-code emission.
 *
 * Profiling (the source of the local scheduler's execution estimates)
 * runs between steps 2 and 4, mirroring the paper's profile-driven
 * estimates.
 */

#ifndef MCA_COMPILER_PIPELINE_HH
#define MCA_COMPILER_PIPELINE_HH

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "compiler/optimize.hh"
#include "compiler/partition.hh"
#include "compiler/partition_ml.hh"
#include "compiler/regalloc.hh"
#include "compiler/schedule.hh"
#include "compiler/superblock.hh"
#include "compiler/unroll.hh"
#include "prog/cfg.hh"

namespace mca::compiler
{

/** Which live-range partitioner to run (step 4). */
enum class SchedulerKind
{
    /**
     * None: cluster-unaware allocation over the full register file.
     * This is the paper's baseline — the native binary, whose live
     * ranges land on clusters only through the even/odd register map.
     */
    Native,
    /** The paper's local scheduler (§3.5). */
    Local,
    /** Blind round-robin assignment (ablation). */
    RoundRobin,
    /**
     * Multilevel graph partitioner over the live-range affinity graph
     * (coarsen / partition / FM-refine, partition_ml.hh). Scales to
     * any cluster count.
     */
    Multilevel,
};

struct CompileOptions
{
    SchedulerKind scheduler = SchedulerKind::Native;
    /** Cluster count the binary is scheduled for (1 for Native). */
    unsigned numClusters = 1;
    unsigned imbalanceThreshold = 4;
    bool optimize = true;
    /** Unroll eligible counted self-loops by this factor (1 = off). */
    unsigned unrollFactor = 1;
    /** Form superblocks (tail duplication + straightening, §6). */
    bool superblocks = false;
    bool listSchedule = true;
    unsigned listScheduleWidth = 8;
    /** Derive block weights from a profiling run before partitioning. */
    bool profileFirst = true;
    std::uint64_t profileSeed = 1;
    std::uint64_t profileMaxInsts = 200'000;

    /**
     * Run prog::verifyIR() between passes; a violation aborts the
     * compile with std::runtime_error. Defaults on in debug builds.
     * Diagnostic only — never changes the produced binary.
     */
#ifdef NDEBUG
    bool verifyIr = false;
#else
    bool verifyIr = true;
#endif
    /**
     * Pass names whose output to snapshot into CompileOutput::dumps
     * ("all" captures every pass). Diagnostic only.
     */
    std::vector<std::string> dumpAfter;

    /**
     * Canonical text form of every field that affects the produced
     * binary, in a fixed order (diagnostic fields excluded). Two
     * options with equal keys compile any program identically — this
     * is the compile-cache identity.
     */
    std::string canonicalKey() const;
};

/**
 * The canonical CompileOptions for a named scheduler ("native",
 * "local", "roundrobin", "multilevel") targeting a machine with
 * `machine_clusters` clusters — the one place the name-to-options
 * mapping lives, shared by mcasim, the runner, and the Table-2
 * harness. A "local" or "multilevel" request on a single-cluster
 * machine degrades to Native (nothing to partition).
 * Throws std::runtime_error on an unknown scheduler name.
 */
CompileOptions compileOptionsFor(const std::string &scheduler,
                                 unsigned machine_clusters);

/**
 * The partitioner names `--partitioner` accepts: the clustered
 * schedulers, i.e. every SchedulerKind except Native.
 */
const std::vector<std::string> &partitionerNames();

/** Wall-clock and IR-delta record for one executed pass. */
struct PassStat
{
    std::string pass;
    double wallMs = 0.0;
    std::uint64_t blocksBefore = 0;
    std::uint64_t blocksAfter = 0;
    std::uint64_t instsBefore = 0;
    std::uint64_t instsAfter = 0;
    /** Live ranges (program value-table size). */
    std::uint64_t valuesBefore = 0;
    std::uint64_t valuesAfter = 0;
    /** Spill loads+stores inserted so far (regalloc onward). */
    std::uint64_t spillOpsBefore = 0;
    std::uint64_t spillOpsAfter = 0;
};

struct CompileOutput
{
    /** The executable (what the timing simulator runs). */
    prog::MachProgram binary;
    /** Allocator outcome (rewritten IL, registers, spill stats). */
    AllocResult alloc;
    /** Partitioner assignment (pre-allocation; empty for Native). */
    ClusterAssignment partition;
    /** Partitioner decision record (Figure-6 reproduction). */
    PartitionTrace partitionTrace;
    /**
     * Partition quality (affinity cut, balance, FM gain) for any
     * clustered scheduler; all-zero for Native.
     */
    PartitionStats partitionStats;
    OptStats optStats;
    UnrollStats unrollStats;
    SuperblockStats superblockStats;
    ScheduleStats scheduleStats;

    /** Per-pass timing and IR deltas, in execution order. */
    std::vector<PassStat> passStats;
    /** (pass name, snapshot) pairs captured for dumpAfter. */
    std::vector<std::pair<std::string, std::string>> dumps;

    /** The captured snapshot for `pass`, or nullptr. */
    const std::string *dumpFor(std::string_view pass) const;

    /**
     * Register map a machine with `num_clusters` clusters must use to run
     * this binary: the default local even/odd assignment plus the global
     * registers this binary's global candidates were precolored onto.
     */
    isa::RegisterMap hardwareMap(unsigned num_clusters) const;
};

/** Run the full pipeline. The input program is copied, never modified. */
CompileOutput compile(const prog::Program &prog,
                      const CompileOptions &options);

} // namespace mca::compiler

#endif // MCA_COMPILER_PIPELINE_HH
