/**
 * @file
 * Graph-coloring register allocation (Briggs optimistic coloring).
 *
 * Implements the paper's register-allocation design (§3.4): coloring is
 * separated from spilling, and a live range that cannot be colored in its
 * assigned cluster is spilled *first to a local register in the other
 * cluster* and only then to memory. Global-register candidates are
 * precolored onto the global registers (SP -> r30, GP -> r29, further
 * candidates downward), which the returned RegisterMap marks global.
 *
 * Spilling rewrites the IL: every use of a spilled live range reloads
 * into a fresh short-lived temporary, every definition stores through a
 * fresh temporary, and the allocator recolors until no spills remain.
 * Call-crossing live ranges are force-spilled up front (caller-saved
 * convention; DESIGN.md §5).
 */

#ifndef MCA_COMPILER_REGALLOC_HH
#define MCA_COMPILER_REGALLOC_HH

#include <vector>

#include "compiler/partition.hh"
#include "isa/registers.hh"
#include "prog/cfg.hh"

namespace mca::compiler
{

/** Allocation configuration. */
struct AllocOptions
{
    /** Cluster structure of the target machine. */
    isa::RegisterMap regMap{1};
    /**
     * Cluster assignment from a partitioner; empty for cluster-unaware
     * allocation (the "native binary" of the paper's baseline).
     */
    ClusterAssignment assignment;
    /** Safety bound on color/spill rounds. */
    unsigned maxRounds = 32;
    /** Force-spill live ranges that are live across calls. */
    bool spillCallCrossing = true;
};

/** Allocation outcome. */
struct AllocResult
{
    /** IL with spill code inserted (value table possibly grown). */
    prog::Program rewritten;
    /** Architectural register per value of `rewritten`. */
    std::vector<isa::RegId> regOf;
    /** Values of the *original* program that ended up in memory. */
    std::vector<bool> spilledToMemory;
    /** Final cluster of every value (after other-cluster respills). */
    ClusterAssignment finalAssignment;
    /** Register map including any extra global registers consumed. */
    isa::RegisterMap finalMap{1};
    /**
     * Registers hosting global-register candidates (SP, GP, ...). A
     * machine with any cluster count must mark exactly these global.
     */
    std::vector<isa::RegId> globalRegs;

    unsigned rounds = 0;
    std::uint64_t memorySpills = 0;       ///< ranges spilled to memory
    std::uint64_t otherClusterSpills = 0; ///< ranges recolored across
    std::uint64_t callCrossingSpills = 0;
    std::uint64_t spillLoadsInserted = 0;
    std::uint64_t spillStoresInserted = 0;
};

/** Run the allocator. The input program is copied, never modified. */
AllocResult allocateRegisters(const prog::Program &prog,
                              const AllocOptions &options);

/**
 * Emit the machine program for an allocation. Unset operand slots
 * (spill-load bases, constant sources) become the zero register.
 */
prog::MachProgram emitMachine(const AllocResult &alloc);

} // namespace mca::compiler

#endif // MCA_COMPILER_REGALLOC_HH
