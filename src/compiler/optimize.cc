#include "compiler/optimize.hh"

#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "support/panic.hh"

namespace mca::compiler
{

namespace
{

/** Evaluate an integer ALU op over constants, if foldable. */
std::optional<std::int64_t>
evalInt(isa::Op op, std::int64_t a, std::int64_t b)
{
    switch (op) {
      case isa::Op::Add: return a + b;
      case isa::Op::Sub: return a - b;
      case isa::Op::And: return a & b;
      case isa::Op::Or: return a | b;
      case isa::Op::Xor: return a ^ b;
      case isa::Op::Sll:
        return (b & 63) == b ? std::optional<std::int64_t>(a << b)
                             : std::nullopt;
      case isa::Op::Srl:
        return (b & 63) == b
                   ? std::optional<std::int64_t>(static_cast<std::int64_t>(
                         static_cast<std::uint64_t>(a) >> b))
                   : std::nullopt;
      case isa::Op::CmpEq: return a == b ? 1 : 0;
      case isa::Op::CmpLt: return a < b ? 1 : 0;
      case isa::Op::CmpLe: return a <= b ? 1 : 0;
      case isa::Op::Mull: return a * b;
      default: return std::nullopt;
    }
}

/** Ops whose register-immediate form exists in the ISA. */
bool
hasImmediateForm(isa::Op op)
{
    switch (op) {
      case isa::Op::Add: case isa::Op::Sub: case isa::Op::And:
      case isa::Op::Or: case isa::Op::Xor: case isa::Op::Sll:
      case isa::Op::Srl: case isa::Op::Sra: case isa::Op::CmpEq:
      case isa::Op::CmpLt: case isa::Op::CmpLe: case isa::Op::Mull:
        return true;
      default:
        return false;
    }
}

bool
hasSideEffects(const prog::Instr &in)
{
    return isa::isStore(in.op) || isa::isCtrlFlow(in.op) ||
           in.op == isa::Op::Nop;
}

} // namespace

OptStats
constantFold(prog::Program &prog)
{
    OptStats stats;
    for (auto &fn : prog.functions) {
        for (auto &blk : fn.blocks) {
            // Known constants within this block (killed on redefinition).
            std::map<prog::ValueId, std::int64_t> known;
            for (auto &in : blk.instrs) {
                // Propagate known constants into immediate slots.
                if (in.srcs[1] != prog::kNoValue &&
                    hasImmediateForm(in.op)) {
                    auto it = known.find(in.srcs[1]);
                    if (it != known.end()) {
                        in.srcs[1] = prog::kNoValue;
                        in.imm = it->second;
                        ++stats.immediatesPropagated;
                    }
                }
                // Fold fully-constant integer ops into Lda.
                if (in.dest != prog::kNoValue &&
                    prog.values[in.dest].cls == isa::RegClass::Int &&
                    in.op != isa::Op::Lda && !isa::isMemOp(in.op) &&
                    !isa::isCtrlFlow(in.op)) {
                    std::optional<std::int64_t> a, b;
                    if (in.srcs[0] != prog::kNoValue) {
                        auto it = known.find(in.srcs[0]);
                        if (it != known.end())
                            a = it->second;
                    }
                    if (in.srcs[1] == prog::kNoValue)
                        b = in.imm;
                    else {
                        auto it = known.find(in.srcs[1]);
                        if (it != known.end())
                            b = it->second;
                    }
                    if (a && b) {
                        if (auto r = evalInt(in.op, *a, *b)) {
                            in.op = isa::Op::Lda;
                            in.srcs = {prog::kNoValue, prog::kNoValue};
                            in.imm = *r;
                            ++stats.constantsFolded;
                        }
                    }
                }
                // Track definitions.
                if (in.dest != prog::kNoValue) {
                    if (in.op == isa::Op::Lda &&
                        in.srcs[0] == prog::kNoValue)
                        known[in.dest] = in.imm;
                    else
                        known.erase(in.dest);
                }
            }
        }
    }
    return stats;
}

OptStats
localCse(prog::Program &prog)
{
    OptStats stats;
    using Key = std::tuple<isa::Op, prog::ValueId, prog::ValueId,
                           std::int64_t>;
    for (auto &fn : prog.functions) {
        for (auto &blk : fn.blocks) {
            std::map<Key, prog::ValueId> avail;
            for (auto &in : blk.instrs) {
                const bool eligible =
                    in.dest != prog::kNoValue && !isa::isMemOp(in.op) &&
                    !isa::isCtrlFlow(in.op) && in.op != isa::Op::Mov &&
                    in.op != isa::Op::MovF;
                bool replaced = false;
                if (eligible) {
                    const Key key{in.op, in.srcs[0], in.srcs[1], in.imm};
                    auto it = avail.find(key);
                    if (it != avail.end() && it->second != in.dest) {
                        // Same expression already computed: use a move.
                        const auto cls = prog.values[in.dest].cls;
                        in.op = cls == isa::RegClass::Int ? isa::Op::Mov
                                                          : isa::Op::MovF;
                        in.srcs = {it->second, prog::kNoValue};
                        in.imm = 0;
                        ++stats.cseReplaced;
                        replaced = true;
                    }
                }
                // Kill expressions invalidated by the redefinition.
                if (in.dest != prog::kNoValue) {
                    for (auto it = avail.begin(); it != avail.end();) {
                        const auto &[op, s0, s1, imm] = it->first;
                        if (s0 == in.dest || s1 == in.dest ||
                            it->second == in.dest)
                            it = avail.erase(it);
                        else
                            ++it;
                    }
                }
                // Record the fresh expression unless its destination is
                // one of its own sources (self-redefinition).
                if (eligible && !replaced && in.srcs[0] != in.dest &&
                    in.srcs[1] != in.dest) {
                    avail[Key{in.op, in.srcs[0], in.srcs[1], in.imm}] =
                        in.dest;
                }
            }
        }
    }
    return stats;
}

OptStats
copyPropagate(prog::Program &prog)
{
    OptStats stats;

    // Definition counts, for the whole-program single-def rule.
    std::vector<std::uint32_t> defs(prog.values.size(), 0);
    // copyOf[d] = s when d's unique definition is "d = Mov s".
    std::vector<prog::ValueId> copyOf(prog.values.size(), prog::kNoValue);
    for (const auto &fn : prog.functions)
        for (const auto &blk : fn.blocks)
            for (const auto &in : blk.instrs) {
                if (in.dest == prog::kNoValue)
                    continue;
                ++defs[in.dest];
                const bool is_move = (in.op == isa::Op::Mov ||
                                      in.op == isa::Op::MovF) &&
                                     in.srcs[0] != prog::kNoValue;
                copyOf[in.dest] =
                    is_move && defs[in.dest] == 1 ? in.srcs[0]
                                                  : prog::kNoValue;
            }

    // Whole-program propagation: d = Mov s with d and s each defined
    // exactly once means every use of d can read s directly (s is
    // never overwritten). Chase chains of such copies.
    auto resolve = [&](prog::ValueId v) {
        unsigned guard = 0;
        // The source must never be redefined: one def, or zero for
        // live-in values.
        while (v != prog::kNoValue && copyOf[v] != prog::kNoValue &&
               defs[v] == 1 && defs[copyOf[v]] <= 1 && guard++ < 8)
            v = copyOf[v];
        return v;
    };

    for (auto &fn : prog.functions) {
        for (auto &blk : fn.blocks) {
            // Block-local copy table with proper kills (handles
            // multiply-defined values).
            std::map<prog::ValueId, prog::ValueId> local;
            for (auto &in : blk.instrs) {
                for (auto &src : in.srcs) {
                    if (src == prog::kNoValue)
                        continue;
                    auto it = local.find(src);
                    prog::ValueId repl =
                        it != local.end() ? it->second : resolve(src);
                    if (repl != src && repl != prog::kNoValue) {
                        src = repl;
                        ++stats.copiesPropagated;
                    }
                }
                if (in.dest != prog::kNoValue) {
                    // Kill table entries invalidated by this def.
                    for (auto it = local.begin(); it != local.end();) {
                        if (it->first == in.dest ||
                            it->second == in.dest)
                            it = local.erase(it);
                        else
                            ++it;
                    }
                    if ((in.op == isa::Op::Mov ||
                         in.op == isa::Op::MovF) &&
                        in.srcs[0] != prog::kNoValue &&
                        in.srcs[0] != in.dest)
                        local[in.dest] = in.srcs[0];
                }
            }
        }
    }
    return stats;
}

OptStats
deadCodeElim(prog::Program &prog)
{
    OptStats stats;
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<std::uint64_t> uses(prog.values.size(), 0);
        for (const auto &fn : prog.functions)
            for (const auto &blk : fn.blocks)
                for (const auto &in : blk.instrs)
                    for (prog::ValueId s : in.srcs)
                        if (s != prog::kNoValue)
                            ++uses[s];

        for (auto &fn : prog.functions) {
            for (auto &blk : fn.blocks) {
                std::vector<prog::Instr> kept;
                kept.reserve(blk.instrs.size());
                for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
                    const auto &in = blk.instrs[i];
                    const bool is_term = i + 1 == blk.instrs.size() &&
                                         isa::isCtrlFlow(in.op);
                    const bool dead =
                        !is_term && !hasSideEffects(in) &&
                        in.dest != prog::kNoValue &&
                        uses[in.dest] == 0 &&
                        !prog.values[in.dest].globalCandidate;
                    if (dead) {
                        ++stats.deadRemoved;
                        changed = true;
                    } else {
                        kept.push_back(in);
                    }
                }
                blk.instrs = std::move(kept);
            }
        }
    }
    return stats;
}

OptStats
optimizeProgram(prog::Program &prog, unsigned max_iters)
{
    OptStats total;
    for (unsigned i = 0; i < max_iters; ++i) {
        OptStats round;
        const OptStats cf = constantFold(prog);
        const OptStats cse = localCse(prog);
        const OptStats cp = copyPropagate(prog);
        const OptStats dce = deadCodeElim(prog);
        round.constantsFolded = cf.constantsFolded;
        round.immediatesPropagated = cf.immediatesPropagated;
        round.cseReplaced = cse.cseReplaced;
        round.copiesPropagated = cp.copiesPropagated;
        round.deadRemoved = dce.deadRemoved;

        total.constantsFolded += round.constantsFolded;
        total.immediatesPropagated += round.immediatesPropagated;
        total.cseReplaced += round.cseReplaced;
        total.copiesPropagated += round.copiesPropagated;
        total.deadRemoved += round.deadRemoved;

        if (round.constantsFolded + round.immediatesPropagated +
                round.cseReplaced + round.copiesPropagated +
                round.deadRemoved ==
            0)
            break;
    }
    return total;
}

} // namespace mca::compiler
