#include "compiler/pass.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "compiler/affinity.hh"
#include "compiler/partition_ml.hh"
#include "exec/trace.hh"
#include "prof/prof.hh"
#include "support/panic.hh"

namespace mca::compiler
{

namespace
{

std::uint64_t
blockCount(const prog::Program &prog)
{
    std::uint64_t n = 0;
    for (const auto &fn : prog.functions)
        n += fn.blocks.size();
    return n;
}

std::uint64_t
spillOpCount(const CompileOutput &out)
{
    return out.alloc.spillLoadsInserted + out.alloc.spillStoresInserted;
}

class OptimizePass : public Pass
{
  public:
    std::string_view name() const override { return "optimize"; }
    std::string_view
    description() const override
    {
        return "conventional IL optimizations (step 1)";
    }
    void
    run(PassContext &ctx) override
    {
        ctx.out.optStats = optimizeProgram(ctx.program);
    }
};

class UnrollPass : public Pass
{
  public:
    std::string_view name() const override { return "unroll"; }
    std::string_view
    description() const override
    {
        return "unroll eligible counted self-loops (§6)";
    }
    void
    run(PassContext &ctx) override
    {
        ctx.out.unrollStats =
            unrollLoops(ctx.program, ctx.options.unrollFactor);
    }
};

class SuperblockPass : public Pass
{
  public:
    std::string_view name() const override { return "superblock"; }
    std::string_view
    description() const override
    {
        return "superblock formation: tail duplication + straightening "
               "(§6)";
    }
    void
    run(PassContext &ctx) override
    {
        ctx.out.superblockStats = formSuperblocks(ctx.program);
    }
};

class SchedulePass : public Pass
{
  public:
    std::string_view name() const override { return "schedule"; }
    std::string_view
    description() const override
    {
        return "prepass list scheduling (step 2)";
    }
    void
    run(PassContext &ctx) override
    {
        ScheduleOptions sopt;
        sopt.width = ctx.options.listScheduleWidth;
        ctx.out.scheduleStats = listSchedule(ctx.program, sopt);
    }
};

class ProfilePass : public Pass
{
  public:
    std::string_view name() const override { return "profile"; }
    std::string_view
    description() const override
    {
        return "profiling run: measured block/edge weights for the "
               "partitioner";
    }
    void
    run(PassContext &ctx) override
    {
        const auto profile =
            exec::profileProgram(ctx.program, ctx.options.profileSeed,
                                 ctx.options.profileMaxInsts);
        exec::applyProfile(ctx.program, profile);
    }
};

class PartitionPass : public Pass
{
  public:
    std::string_view name() const override { return "partition"; }
    std::string_view
    description() const override
    {
        return "live-range partitioning across clusters (step 4, §3.5)";
    }
    void
    run(PassContext &ctx) override
    {
        PartitionOptions popt;
        popt.numClusters = ctx.options.numClusters;
        popt.imbalanceThreshold = ctx.options.imbalanceThreshold;
        popt.validate();
        switch (ctx.options.scheduler) {
          case SchedulerKind::Native:
            MCA_PANIC("partition pass scheduled for a native compile");
            break;
          case SchedulerKind::Local:
            MCA_ASSERT(ctx.options.numClusters >= 2,
                       "local scheduler needs a clustered target");
            ctx.out.partition = localSchedule(ctx.program, popt,
                                              &ctx.out.partitionTrace);
            break;
          case SchedulerKind::RoundRobin:
            MCA_ASSERT(ctx.options.numClusters >= 2,
                       "round-robin needs a clustered target");
            ctx.out.partition = roundRobinSchedule(ctx.program, popt);
            break;
          case SchedulerKind::Multilevel:
            MCA_ASSERT(ctx.options.numClusters >= 2,
                       "multilevel partitioner needs a clustered target");
            ctx.out.partition = multilevelPartition(
                ctx.program, popt, &ctx.out.partitionStats);
            break;
        }
        // One comparable quality record per compile, whichever
        // partitioner ran (the multilevel fills its FM fields above).
        if (ctx.options.scheduler != SchedulerKind::Multilevel) {
            const AffinityGraph graph = buildAffinityGraph(ctx.program);
            ctx.out.partitionStats = scorePartition(
                graph, ctx.out.partition, ctx.options.numClusters);
        }
        exportPartitionStats(ctx.out.partitionStats, ctx.stats);
        ctx.verify.clusterOf = &ctx.out.partition.cluster;
        ctx.verify.numClusters = ctx.options.numClusters;
    }
};

class RegallocPass : public Pass
{
  public:
    std::string_view name() const override { return "regalloc"; }
    std::string_view
    description() const override
    {
        return "graph-coloring register allocation with spilling "
               "(step 5)";
    }
    void
    run(PassContext &ctx) override
    {
        AllocOptions aopt;
        aopt.regMap = isa::RegisterMap(
            ctx.options.scheduler == SchedulerKind::Native
                ? 1
                : ctx.options.numClusters);
        aopt.assignment = ctx.out.partition;
        ctx.out.alloc = allocateRegisters(ctx.program, aopt);
        // Later passes (and verification) see what will be emitted:
        // the spill-expanded rewrite, its final assignment extended to
        // the spill temporaries, and the coloring itself. A native
        // compile has no cluster assignment to check.
        ctx.program = ctx.out.alloc.rewritten;
        if (ctx.options.scheduler != SchedulerKind::Native) {
            ctx.verify.clusterOf =
                &ctx.out.alloc.finalAssignment.cluster;
            ctx.verify.numClusters =
                ctx.out.alloc.finalMap.numClusters();
        }
        ctx.verify.regOf = &ctx.out.alloc.regOf;
        ctx.verify.regMap = &ctx.out.alloc.finalMap;
    }
};

class EmitPass : public Pass
{
  public:
    std::string_view name() const override { return "emit"; }
    std::string_view
    description() const override
    {
        return "machine-code emission (step 6)";
    }
    void
    run(PassContext &ctx) override
    {
        ctx.out.binary = emitMachine(ctx.out.alloc);
    }
    std::string
    dump(const PassContext &ctx) const override
    {
        return prog::dumpProgram(ctx.out.binary);
    }
};

bool
wantsDump(const CompileOptions &options, std::string_view pass)
{
    for (const auto &want : options.dumpAfter)
        if (want == "all" || want == pass)
            return true;
    return false;
}

void
verifyOrThrow(const PassContext &ctx, const std::string &when)
{
    const prog::VerifyResult res =
        prog::verifyIR(ctx.program, ctx.verify);
    if (!res.ok())
        throw std::runtime_error("verify-ir: invariant violation " +
                                 when + ":\n" + res.str());
}

} // namespace

std::string
Pass::dump(const PassContext &ctx) const
{
    return prog::dumpProgram(ctx.program);
}

const std::vector<PassInfo> &
allPasses()
{
    // Canonical pipeline order; buildPipeline() picks the subset the
    // options enable.
    static const std::vector<PassInfo> kPasses = [] {
        std::vector<PassInfo> infos;
        for (const auto &pass : buildPipeline([] {
                 CompileOptions all;
                 all.scheduler = SchedulerKind::Local;
                 all.numClusters = 2;
                 all.unrollFactor = 2;
                 all.superblocks = true;
                 return all;
             }()))
            infos.push_back({pass->name(), pass->description()});
        return infos;
    }();
    return kPasses;
}

bool
isPassName(std::string_view name)
{
    const auto &passes = allPasses();
    return std::any_of(passes.begin(), passes.end(),
                       [&](const PassInfo &p) { return p.name == name; });
}

std::vector<std::unique_ptr<Pass>>
buildPipeline(const CompileOptions &options)
{
    std::vector<std::unique_ptr<Pass>> passes;
    if (options.optimize)
        passes.push_back(std::make_unique<OptimizePass>());
    if (options.unrollFactor >= 2)
        passes.push_back(std::make_unique<UnrollPass>());
    if (options.superblocks)
        passes.push_back(std::make_unique<SuperblockPass>());
    if (options.listSchedule)
        passes.push_back(std::make_unique<SchedulePass>());
    if (options.profileFirst &&
        options.scheduler != SchedulerKind::Native)
        passes.push_back(std::make_unique<ProfilePass>());
    if (options.scheduler != SchedulerKind::Native)
        passes.push_back(std::make_unique<PartitionPass>());
    passes.push_back(std::make_unique<RegallocPass>());
    passes.push_back(std::make_unique<EmitPass>());
    return passes;
}

void
PassManager::run(PassContext &ctx) const
{
    if (verifyIr_) {
        // Pre-existing def-before-use findings are an input-program
        // property (the random fuzzer emits them on purpose; the trace
        // interpreter zero-fills unwritten live ranges), not a pass
        // bug: downgrade that one check and hold the passes to every
        // other invariant. Anything else in the input is fatal.
        const prog::VerifyResult input =
            prog::verifyIR(ctx.program, ctx.verify);
        if (!input.ok()) {
            const bool onlyDefBeforeUse = std::all_of(
                input.errors.begin(), input.errors.end(),
                [](const prog::VerifyError &e) {
                    return e.kind ==
                           prog::VerifyErrorKind::DefBeforeUse;
                });
            if (!onlyDefBeforeUse)
                throw std::runtime_error(
                    "verify-ir: invariant violation in the input "
                    "program:\n" +
                    input.str());
            ctx.verify.checkDefBeforeUse = false;
        }
    }

    unsigned index = 0;
    for (const auto &pass : passes_) {
        PassStat stat;
        stat.pass = std::string(pass->name());
        stat.blocksBefore = blockCount(ctx.program);
        stat.instsBefore = ctx.program.staticInstCount();
        stat.valuesBefore = ctx.program.values.size();
        stat.spillOpsBefore = spillOpCount(ctx.out);

        const auto start = std::chrono::steady_clock::now();
        {
            // Region per pass, reusing the per-pass PassStat names so
            // the host profile and pass-stats dumps line up.
            prof::ScopeTimer prof_scope(
                prof::internRegion("compile." + stat.pass));
            pass->run(ctx);
        }
        stat.wallMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();

        stat.blocksAfter = blockCount(ctx.program);
        stat.instsAfter = ctx.program.staticInstCount();
        stat.valuesAfter = ctx.program.values.size();
        stat.spillOpsAfter = spillOpCount(ctx.out);
        ctx.out.passStats.push_back(stat);

        if (wantsDump(ctx.options, pass->name()))
            ctx.out.dumps.emplace_back(std::string(pass->name()),
                                       pass->dump(ctx));
        if (verifyIr_)
            verifyOrThrow(ctx, "after pass '" + stat.pass + "'");
        ++index;
    }
    exportPassStats(ctx.out.passStats, ctx.stats);
}

void
exportPassStats(const std::vector<PassStat> &passes, StatGroup &group,
                const std::string &prefix)
{
    unsigned index = 0;
    for (const auto &stat : passes) {
        // Two-digit index keeps dump order == execution order (the
        // registry dumps sort by name).
        char head[64];
        std::snprintf(head, sizeof head, "%s.%02u_%s", prefix.c_str(),
                      index++, stat.pass.c_str());
        group.counter(std::string(head) + ".wall_us",
                      "pass wall clock (us)") +=
            static_cast<std::uint64_t>(stat.wallMs * 1000.0);
        group.counter(std::string(head) + ".blocks",
                      "basic blocks after the pass") += stat.blocksAfter;
        group.counter(std::string(head) + ".insts",
                      "IL instructions after the pass") +=
            stat.instsAfter;
        group.counter(std::string(head) + ".values",
                      "live ranges after the pass") += stat.valuesAfter;
        group.counter(std::string(head) + ".spill_ops",
                      "spill loads+stores inserted so far") +=
            stat.spillOpsAfter;
    }
}

void
exportPartitionStats(const PartitionStats &stats, StatGroup &group,
                     const std::string &prefix)
{
    group.counter(prefix + ".cut_weight",
                  "affinity edge weight cut by the partition") +=
        stats.cutWeight;
    group.counter(prefix + ".total_weight",
                  "total affinity edge weight") += stats.totalEdgeWeight;
    group.counter(prefix + ".balance_x1000",
                  "heaviest cluster / ideal weight, x1000") +=
        static_cast<std::uint64_t>(stats.balance * 1000.0);
    group.counter(prefix + ".fm_gain",
                  "cut reduction from FM refinement") += stats.fmGain;
    group.counter(prefix + ".fm_passes",
                  "FM refinement passes executed") += stats.fmPasses;
    group.counter(prefix + ".coarsen_levels",
                  "coarsening levels built") += stats.coarsenLevels;
    group.counter(prefix + ".nodes",
                  "affinity-graph nodes (local live ranges)") +=
        stats.numNodes;
    group.counter(prefix + ".clusters",
                  "clusters partitioned for") += stats.numClusters;
}

} // namespace mca::compiler
