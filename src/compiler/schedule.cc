#include "compiler/schedule.hh"

#include <algorithm>
#include <map>
#include <vector>

#include "isa/opcodes.hh"
#include "support/panic.hh"

namespace mca::compiler
{

namespace
{

struct Edge
{
    std::uint32_t to;
    unsigned latency;
};

/** Dependence DAG over one block's instructions. */
struct BlockDag
{
    std::vector<std::vector<Edge>> succs;
    std::vector<unsigned> npreds;
    std::vector<unsigned> height;   // critical path to any sink
};

BlockDag
buildDag(const prog::BasicBlock &blk)
{
    const std::size_t n = blk.instrs.size();
    BlockDag dag;
    dag.succs.assign(n, {});
    dag.npreds.assign(n, 0);
    dag.height.assign(n, 0);

    auto addEdge = [&](std::uint32_t from, std::uint32_t to,
                       unsigned lat) {
        for (const auto &e : dag.succs[from])
            if (e.to == to)
                return;
        dag.succs[from].push_back({to, lat});
        ++dag.npreds[to];
    };

    std::map<prog::ValueId, std::uint32_t> lastDef;
    std::map<prog::ValueId, std::vector<std::uint32_t>> usesSinceDef;
    std::uint32_t lastStore = ~std::uint32_t{0};
    std::vector<std::uint32_t> loadsSinceStore;

    for (std::uint32_t i = 0; i < n; ++i) {
        const auto &in = blk.instrs[i];

        for (prog::ValueId s : in.srcs) {
            if (s == prog::kNoValue)
                continue;
            auto it = lastDef.find(s);
            if (it != lastDef.end())
                addEdge(it->second, i,
                        isa::opLatency(blk.instrs[it->second].op));
            usesSinceDef[s].push_back(i);
        }
        if (in.dest != prog::kNoValue) {
            auto it = lastDef.find(in.dest);
            if (it != lastDef.end())
                addEdge(it->second, i, 1);  // output dependence
            for (std::uint32_t u : usesSinceDef[in.dest])
                if (u != i)
                    addEdge(u, i, 0);       // anti dependence
            usesSinceDef[in.dest].clear();
            lastDef[in.dest] = i;
        }
        if (isa::isMemOp(in.op)) {
            // Conservative memory order: stores are barriers for all
            // memory operations; loads may reorder among themselves.
            if (lastStore != ~std::uint32_t{0})
                addEdge(lastStore, i, 1);
            if (isa::isStore(in.op)) {
                for (std::uint32_t l : loadsSinceStore)
                    addEdge(l, i, 0);
                loadsSinceStore.clear();
                lastStore = i;
            } else {
                loadsSinceStore.push_back(i);
            }
        }
    }

    // The terminator (if any) must remain last.
    if (n > 0 && isa::isCtrlFlow(blk.instrs[n - 1].op)) {
        const auto term = static_cast<std::uint32_t>(n - 1);
        for (std::uint32_t i = 0; i + 1 < n; ++i)
            addEdge(i, term, isa::opLatency(blk.instrs[i].op));
    }

    // Heights by reverse topological sweep (indices are topologically
    // ordered because all edges go forward).
    for (std::uint32_t i = static_cast<std::uint32_t>(n); i-- > 0;) {
        unsigned h = 0;
        for (const auto &e : dag.succs[i])
            h = std::max(h, dag.height[e.to] + e.latency);
        dag.height[i] = h;
    }
    return dag;
}

} // namespace

ScheduleStats
listSchedule(prog::Program &prog, const ScheduleOptions &options)
{
    ScheduleStats stats;
    MCA_ASSERT(options.width >= 1, "scheduler width must be >= 1");

    for (auto &fn : prog.functions) {
        for (auto &blk : fn.blocks) {
            const std::size_t n = blk.instrs.size();
            if (n < 2)
                continue;
            ++stats.blocksScheduled;

            BlockDag dag = buildDag(blk);

            // Cycle-by-cycle greedy list scheduling.
            std::vector<unsigned> preds = dag.npreds;
            std::vector<std::uint64_t> readyAt(n, 0);
            std::vector<bool> done(n, false);
            std::vector<std::uint32_t> order;
            order.reserve(n);

            std::uint64_t cycle = 0;
            std::size_t scheduled = 0;
            while (scheduled < n) {
                // Collect ready instructions for this cycle.
                std::vector<std::uint32_t> ready;
                for (std::uint32_t i = 0; i < n; ++i)
                    if (!done[i] && preds[i] == 0 && readyAt[i] <= cycle)
                        ready.push_back(i);
                // Highest critical-path height first; original order
                // breaks ties to keep the pass deterministic.
                std::sort(ready.begin(), ready.end(),
                          [&](std::uint32_t a, std::uint32_t b) {
                              if (dag.height[a] != dag.height[b])
                                  return dag.height[a] > dag.height[b];
                              return a < b;
                          });
                unsigned issued = 0;
                for (std::uint32_t i : ready) {
                    if (issued >= options.width)
                        break;
                    done[i] = true;
                    order.push_back(i);
                    ++scheduled;
                    ++issued;
                    const std::uint64_t fin =
                        cycle + isa::opLatency(blk.instrs[i].op);
                    for (const auto &e : dag.succs[i]) {
                        --preds[e.to];
                        readyAt[e.to] = std::max(
                            readyAt[e.to], cycle + e.latency);
                        (void)fin;
                    }
                }
                ++cycle;
            }

            std::vector<prog::Instr> reordered;
            reordered.reserve(n);
            for (std::uint32_t i : order)
                reordered.push_back(blk.instrs[i]);
            for (std::size_t i = 0; i < n; ++i)
                if (order[i] != i)
                    ++stats.instsMoved;
            blk.instrs = std::move(reordered);
        }
    }
    return stats;
}

} // namespace mca::compiler
