/**
 * @file
 * Live-variable analysis over the IL.
 *
 * Standard backward iterative dataflow on each function's CFG. Live
 * ranges are function-local in this reproduction (only global-candidate
 * values such as SP/GP cross functions, and those are precolored), which
 * keeps the analysis intraprocedural exactly like the per-binary analysis
 * the paper performed with ATOM.
 */

#ifndef MCA_COMPILER_LIVENESS_HH
#define MCA_COMPILER_LIVENESS_HH

#include <vector>

#include "prog/cfg.hh"
#include "support/bitset.hh"

namespace mca::compiler
{

/** Liveness sets for one function, indexed by block id. */
struct FunctionLiveness
{
    std::vector<BitSet> use;     ///< upward-exposed uses per block
    std::vector<BitSet> def;     ///< values defined per block
    std::vector<BitSet> liveIn;  ///< live at block entry
    std::vector<BitSet> liveOut; ///< live at block exit
};

/** Liveness for every function of a program. */
struct ProgramLiveness
{
    std::vector<FunctionLiveness> functions;
};

/**
 * Compute liveness. All sets are sized to prog.values.size() so ValueIds
 * index directly.
 */
ProgramLiveness computeLiveness(const prog::Program &prog);

/**
 * Values that are live across at least one call site (Jsr terminator).
 * Under the caller-saved convention these must live in memory across the
 * call, so the allocator force-spills them (DESIGN.md §5: call-crossing
 * live ranges).
 */
BitSet callCrossingValues(const prog::Program &prog,
                          const ProgramLiveness &live);

/**
 * Verify that every non-global value is referenced by exactly one
 * function. Panics otherwise (the compiler's function-at-a-time register
 * allocation depends on it).
 */
void checkValueLocality(const prog::Program &prog);

} // namespace mca::compiler

#endif // MCA_COMPILER_LIVENESS_HH
