/**
 * @file
 * Loop unrolling (the paper's §6 future work).
 *
 * "Loop unrolling ... could be used to generate a code schedule in
 * which multiple iterations of a loop were interleaved, with each
 * iteration scheduled to use a separate cluster of a multicluster
 * processor."
 *
 * This pass unrolls self-looping blocks (a block whose conditional
 * terminator targets itself) by a given factor: the body is replicated,
 * block-defined values get a fresh live range per instance (so the
 * partitioner can place different iterations in different clusters —
 * the interleaving emerges from the §3.5 balance objective), and the
 * final instance writes the original live ranges so loop-carried state
 * flows across the back edge. The back-edge trip count is divided by
 * the factor.
 *
 * Restrictions: only counted self-loops (Loop branch models) with no
 * calls are unrolled, and trip counts are assumed large relative to the
 * factor (the remainder iterations are folded into the quotient — an
 * approximation that changes the dynamic instruction stream, which is
 * fine because unrolling is applied to the program before *both*
 * compilations being compared).
 */

#ifndef MCA_COMPILER_UNROLL_HH
#define MCA_COMPILER_UNROLL_HH

#include <cstdint>

#include "prog/cfg.hh"

namespace mca::compiler
{

struct UnrollStats
{
    std::uint64_t loopsUnrolled = 0;
    std::uint64_t instsAdded = 0;
};

/**
 * Unroll every eligible self-loop by `factor` (>= 2). Returns what was
 * done; the program is modified in place (and re-finalized).
 */
UnrollStats unrollLoops(prog::Program &prog, unsigned factor);

} // namespace mca::compiler

#endif // MCA_COMPILER_UNROLL_HH
