/**
 * @file
 * Live-range affinity graph: the input of the multilevel partitioner
 * and the shared quality metric for every partitioner.
 *
 * Nodes are the local (non-global-candidate) live ranges a program
 * references. An edge connects two values that appear as operands of
 * the same instruction; its weight is the estimated number of dynamic
 * executions of such instructions (profile block weights), i.e. the
 * dual-distribution cost the machine pays every time the two endpoints
 * end up on different clusters. A node's weight is the estimated
 * number of instructions that *write* the value — the instruction
 * issue load its home cluster absorbs — so a weight-balanced
 * partition is a balanced run-time instruction distribution.
 *
 * The graph is partitioner-agnostic: cutWeight()/balanceOf() score any
 * ClusterAssignment (local scheduler, round-robin, multilevel), which
 * is what makes the per-pass cut/balance stats comparable across
 * partitioners.
 */

#ifndef MCA_COMPILER_AFFINITY_HH
#define MCA_COMPILER_AFFINITY_HH

#include <cstdint>
#include <vector>

#include "compiler/partition.hh"
#include "prog/cfg.hh"

namespace mca::compiler
{

/** Weighted undirected graph over the program's local live ranges. */
struct AffinityGraph
{
    static constexpr std::uint32_t kNoNode = ~std::uint32_t{0};

    struct Edge
    {
        std::uint32_t to;          ///< dense node index
        std::uint64_t weight;      ///< co-occurrence weight
    };

    /** Dense node index -> ValueId (ascending, so ids are stable). */
    std::vector<prog::ValueId> nodeValue;
    /** ValueId -> dense node index, or kNoNode for globals/unreferenced. */
    std::vector<std::uint32_t> nodeOf;
    /** Estimated dynamic def count (>= 1) — the balance weight. */
    std::vector<std::uint64_t> nodeWeight;
    /** Blocks in which the value is live (liveness span, diagnostics). */
    std::vector<std::uint32_t> liveSpan;
    /** Symmetric adjacency, each list sorted by `to`. */
    std::vector<std::vector<Edge>> adj;

    std::uint64_t totalNodeWeight = 0;
    /** Sum over distinct edges (each edge counted once). */
    std::uint64_t totalEdgeWeight = 0;

    std::size_t numNodes() const { return nodeValue.size(); }
};

/**
 * Build the affinity graph: liveness identifies the referenced local
 * live ranges, profile block weights scale every co-occurrence.
 */
AffinityGraph buildAffinityGraph(const prog::Program &prog);

/**
 * Total weight of edges whose endpoints sit on different clusters —
 * the estimated dynamic count of dual-distributed instructions. Edges
 * with an unassigned endpoint are not cut (unassigned values are never
 * referenced or are replicated).
 */
std::uint64_t cutWeight(const AffinityGraph &graph,
                        const ClusterAssignment &assignment);

/**
 * Heaviest cluster's node weight divided by the ideal (total/N); 1.0
 * is perfectly balanced, N is everything-on-one-cluster. Returns 0 for
 * an empty graph.
 */
double balanceOf(const AffinityGraph &graph,
                 const ClusterAssignment &assignment,
                 unsigned num_clusters);

} // namespace mca::compiler

#endif // MCA_COMPILER_AFFINITY_HH
