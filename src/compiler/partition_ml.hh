/**
 * @file
 * Multilevel N-way graph partitioner over the live-range affinity
 * graph (ROADMAP: "generalized N-cluster partitioning").
 *
 * The classic three-phase multilevel scheme used by MLPart-style
 * netlist partitioners, applied to the affinity graph of
 * compiler/affinity.hh:
 *
 *  1. Coarsen: heavy-edge matching collapses the heaviest-affinity
 *     pairs level by level until the graph is small.
 *  2. Initial partition: greedy balanced growth on the coarsest graph
 *     (nodes in descending weight order, each placed on the cluster
 *     with the strongest affinity that still fits the balance cap).
 *  3. Uncoarsen + refine: project each level's assignment down and
 *     run Fiduccia–Mattheyses refinement — hill-climbing moves with
 *     rollback to the best prefix — under the same balance cap.
 *
 * Everything is deterministic: node order breaks every tie, there is
 * no randomness, so equal inputs give bit-equal assignments at any
 * build parallelism.
 */

#ifndef MCA_COMPILER_PARTITION_ML_HH
#define MCA_COMPILER_PARTITION_ML_HH

#include <cstdint>

#include "compiler/affinity.hh"
#include "compiler/partition.hh"
#include "prog/cfg.hh"

namespace mca::compiler
{

/** Outcome metrics of one partitioning run (any partitioner). */
struct PartitionStats
{
    /** Weighted affinity edges cut by the final assignment. */
    std::uint64_t cutWeight = 0;
    /** Denominator: total affinity edge weight of the program. */
    std::uint64_t totalEdgeWeight = 0;
    /** Heaviest cluster / ideal cluster weight (1.0 = perfect). */
    double balance = 0.0;
    /** Cut after the initial partition, before any FM pass. */
    std::uint64_t initialCutWeight = 0;
    /** Total cut reduction achieved by FM refinement (>= 0). */
    std::uint64_t fmGain = 0;
    /** FM passes executed across all uncoarsening levels. */
    unsigned fmPasses = 0;
    /** Coarsening levels built (0 = partitioned the input graph). */
    unsigned coarsenLevels = 0;
    /** Affinity-graph nodes (referenced local live ranges). */
    std::uint64_t numNodes = 0;
    unsigned numClusters = 0;
};

/** Tuning knobs of the multilevel partitioner (docs/compiler.md). */
struct MultilevelOptions
{
    /**
     * Balance cap: no cluster may exceed (1 + tolerance) x the ideal
     * weight total/N (relaxed to the heaviest single node when that
     * node alone is bigger). Node weights are discrete, so the cap is
     * best-effort: a cluster whose every node is too heavy to fit
     * anywhere else can stay above it, bounded by cap + the heaviest
     * node weight in practice.
     */
    double balanceTolerance = 0.10;
    /** Stop coarsening at max(coarsenTarget, 8 x N) nodes. */
    unsigned coarsenTarget = 64;
    /** FM pass budget per uncoarsening level. */
    unsigned fmMaxPasses = 8;
    /**
     * Above this node count a level uses greedy positive-gain sweeps
     * instead of full FM with rollback (compile-time guard; the
     * coarse levels where FM matters most are always below it).
     */
    unsigned fmExhaustiveLimit = 4096;
};

/**
 * Partition a program's local live ranges into
 * `options.numClusters` clusters. Global candidates and unreferenced
 * values stay unassigned, like the other partitioners. N = 1 assigns
 * every referenced local value to cluster 0.
 *
 * Throws std::runtime_error via PartitionOptions::validate() on an
 * unsupported cluster count.
 */
ClusterAssignment multilevelPartition(const prog::Program &prog,
                                      const PartitionOptions &options,
                                      PartitionStats *stats = nullptr,
                                      const MultilevelOptions &ml = {});

/**
 * Score any assignment against the program's affinity graph — the
 * shared cut/balance metric the partition pass reports for every
 * scheduler. FM fields are zero.
 */
PartitionStats scorePartition(const AffinityGraph &graph,
                              const ClusterAssignment &assignment,
                              unsigned num_clusters);

} // namespace mca::compiler

#endif // MCA_COMPILER_PARTITION_ML_HH
