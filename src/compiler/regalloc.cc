#include "compiler/regalloc.hh"

#include <algorithm>
#include <limits>

#include "compiler/interference.hh"
#include "compiler/liveness.hh"
#include "support/panic.hh"

namespace mca::compiler
{

namespace
{

constexpr std::size_t kNoNode = ~std::size_t{0};

/** Registers a value may be colored with. */
std::vector<unsigned>
allowedRegisters(isa::RegClass cls, int cluster,
                 const isa::RegisterMap &map,
                 const std::vector<bool> &reserved)
{
    std::vector<unsigned> regs;
    for (unsigned i = 0; i < isa::kNumArchRegs; ++i) {
        const isa::RegId reg(cls, i);
        if (reg.isZero() || reserved[i])
            continue;
        if (map.numClusters() > 1) {
            if (map.isGlobal(reg))
                continue;   // global registers host only global candidates
            if (cluster >= 0 &&
                map.homeCluster(reg) != static_cast<unsigned>(cluster))
                continue;
        }
        regs.push_back(i);
    }
    return regs;
}

/** Static spill cost: weighted reference count over the program. */
std::vector<double>
computeSpillCosts(const prog::Program &prog)
{
    std::vector<double> cost(prog.values.size(), 0.0);
    for (const auto &fn : prog.functions)
        for (const auto &blk : fn.blocks)
            for (const auto &in : blk.instrs) {
                if (in.dest != prog::kNoValue)
                    cost[in.dest] += blk.weight;
                for (prog::ValueId s : in.srcs)
                    if (s != prog::kNoValue)
                        cost[s] += blk.weight;
            }
    return cost;
}

/** Mutable allocator state threaded through the rounds. */
struct AllocState
{
    prog::Program prog;
    ClusterAssignment assignment;
    isa::RegisterMap map{1};
    /** Per-value: spilled to memory. */
    std::vector<bool> spilled;
    /** Per-value: already moved to the other cluster once. */
    std::vector<bool> respilled;
    /** Per-value: spill temporary (never re-spilled to memory). */
    std::vector<bool> isTemp;
    /** Registers unavailable to local coloring (precolored globals). */
    std::vector<bool> reservedInt, reservedFp;
    std::vector<isa::RegId> regOf;

    bool
    clusterAware() const
    {
        return map.numClusters() > 1 && !assignment.cluster.empty();
    }

    int
    clusterOf(prog::ValueId v) const
    {
        return clusterAware() ? assignment.clusterOf(v) : -1;
    }
};

/** Precolor global candidates; extends the map's global set as needed. */
void
precolorGlobals(AllocState &st, AllocResult &result)
{
    unsigned nextInt = isa::kStackPointer;  // r30, r29, r28, ...
    unsigned nextFp = isa::kNumArchRegs - 2; // f30 downward
    for (prog::ValueId v = 0; v < st.prog.values.size(); ++v) {
        const auto &info = st.prog.values[v];
        if (!info.globalCandidate)
            continue;
        unsigned &next =
            info.cls == isa::RegClass::Int ? nextInt : nextFp;
        if (next == 0)
            MCA_FATAL("too many global-register candidates");
        const isa::RegId reg(info.cls, next--);
        st.regOf[v] = reg;
        result.globalRegs.push_back(reg);
        if (info.cls == isa::RegClass::Int)
            st.reservedInt[reg.index] = true;
        else
            st.reservedFp[reg.index] = true;
        if (st.map.numClusters() > 1)
            st.map.setGlobal(reg);
    }
    result.finalMap = st.map;
}

/**
 * Insert spill code for `toSpill` into the program. Every definition of
 * a spilled value is redirected to a fresh temporary followed by a store
 * to the spill slot; every use is preceded by a reload into a fresh
 * temporary.
 */
void
rewriteSpills(AllocState &st, const BitSet &toSpill, AllocResult &result)
{
    // One spill slot (and Fixed address stream) per spilled value.
    std::vector<prog::AddrStreamId> slotOf(st.prog.values.size(),
                                           prog::kNoAddrStream);
    std::uint64_t slots = 0;
    for (const auto &s : st.prog.streams)
        if (s.kind == prog::AddrStream::Kind::Fixed &&
            s.base >= st.prog.spillBase)
            ++slots;

    toSpill.forEach([&](std::size_t v) {
        st.prog.streams.push_back(
            prog::AddrStream::fixed(st.prog.spillBase + 8 * slots++));
        slotOf[v] = static_cast<prog::AddrStreamId>(
            st.prog.streams.size() - 1);
        st.spilled[v] = true;
        ++result.memorySpills;
    });

    auto newTemp = [&](prog::ValueId original) {
        prog::ValueInfo info;
        info.cls = st.prog.values[original].cls;
        info.name = st.prog.values[original].name + ".t";
        st.prog.values.push_back(info);
        const auto t =
            static_cast<prog::ValueId>(st.prog.values.size() - 1);
        st.assignment.cluster.push_back(ClusterAssignment::kUnassigned);
        if (st.clusterAware()) {
            // The temp inherits the spilled range's cluster so reloads
            // stay single-distributed.
            st.assignment.cluster[t] = st.assignment.cluster[original];
        }
        st.spilled.push_back(false);
        st.respilled.push_back(false);
        st.isTemp.push_back(true);
        st.regOf.push_back(isa::RegId());
        return t;
    };

    for (auto &fn : st.prog.functions) {
        for (auto &blk : fn.blocks) {
            std::vector<prog::Instr> out;
            out.reserve(blk.instrs.size());
            for (auto &in : blk.instrs) {
                // Reload spilled sources.
                prog::ValueId reloaded = prog::kNoValue;
                prog::ValueId reloadTmp = prog::kNoValue;
                for (auto &src : in.srcs) {
                    if (src == prog::kNoValue || !toSpill.test(src))
                        continue;
                    if (src == reloaded) {
                        src = reloadTmp; // reuse the same reload
                        continue;
                    }
                    const prog::ValueId t = newTemp(src);
                    prog::Instr ld;
                    ld.op = st.prog.values[src].cls == isa::RegClass::Int
                                ? isa::Op::Ldl
                                : isa::Op::Ldt;
                    ld.dest = t;
                    ld.stream = slotOf[src];
                    out.push_back(ld);
                    ++result.spillLoadsInserted;
                    reloaded = src;
                    reloadTmp = t;
                    src = t;
                }
                // Redirect spilled definitions through a temporary.
                if (in.dest != prog::kNoValue && toSpill.test(in.dest)) {
                    const prog::ValueId orig = in.dest;
                    const prog::ValueId t = newTemp(orig);
                    in.dest = t;
                    out.push_back(in);
                    prog::Instr stIn;
                    stIn.op =
                        st.prog.values[orig].cls == isa::RegClass::Int
                            ? isa::Op::Stl
                            : isa::Op::Stt;
                    stIn.srcs = {t, prog::kNoValue};
                    stIn.stream = slotOf[orig];
                    out.push_back(stIn);
                    ++result.spillStoresInserted;
                } else {
                    out.push_back(in);
                }
            }
            blk.instrs = std::move(out);
        }
    }
}

} // namespace

AllocResult
allocateRegisters(const prog::Program &prog, const AllocOptions &options)
{
    checkValueLocality(prog);

    AllocResult result;
    AllocState st;
    st.prog = prog;
    st.assignment = options.assignment;
    st.map = options.regMap;
    st.spilled.assign(prog.values.size(), false);
    st.respilled.assign(prog.values.size(), false);
    st.isTemp.assign(prog.values.size(), false);
    st.reservedInt.assign(isa::kNumArchRegs, false);
    st.reservedFp.assign(isa::kNumArchRegs, false);
    st.regOf.assign(prog.values.size(), isa::RegId());
    if (!st.assignment.cluster.empty())
        MCA_ASSERT(st.assignment.cluster.size() == prog.values.size(),
                   "assignment size mismatch");

    precolorGlobals(st, result);

    // Force-spill call-crossing live ranges (caller-saved convention).
    if (options.spillCallCrossing) {
        const auto live = computeLiveness(st.prog);
        BitSet crossing = callCrossingValues(st.prog, live);
        // Temps never cross calls; globals excluded by callCrossingValues.
        if (crossing.count() > 0) {
            result.callCrossingSpills = crossing.count();
            rewriteSpills(st, crossing, result);
        }
    }

    const std::size_t kClasses = 2;
    for (unsigned round = 0; round < options.maxRounds; ++round) {
        result.rounds = round + 1;
        const auto live = computeLiveness(st.prog);
        const auto costs = computeSpillCosts(st.prog);

        BitSet spilledSet(st.prog.values.size());
        for (std::size_t v = 0; v < st.prog.values.size(); ++v)
            if (st.spilled[v])
                spilledSet.set(v);

        BitSet toSpill(st.prog.values.size());
        bool anyFailure = false;

        for (prog::FunctionId f = 0; f < st.prog.functions.size(); ++f) {
            for (std::size_t ci = 0; ci < kClasses; ++ci) {
                const auto cls = static_cast<isa::RegClass>(ci);
                auto graph =
                    buildInterference(st.prog, f, cls, live, spilledSet);
                const std::size_t n = graph.numNodes();
                if (n == 0)
                    continue;

                const auto &reserved = cls == isa::RegClass::Int
                                           ? st.reservedInt
                                           : st.reservedFp;

                // Allowed register sets per node.
                std::vector<std::vector<unsigned>> allowed(n);
                for (std::size_t i = 0; i < n; ++i)
                    allowed[i] = allowedRegisters(
                        cls, st.clusterOf(graph.valueOf(i)), st.map,
                        reserved);

                // --- simplify ------------------------------------
                std::vector<std::size_t> curDegree(n);
                std::vector<bool> removed(n, false);
                for (std::size_t i = 0; i < n; ++i)
                    curDegree[i] = graph.degree(i);
                std::vector<std::size_t> stack;
                stack.reserve(n);

                for (std::size_t placed = 0; placed < n;) {
                    // Prefer a trivially colorable node.
                    std::size_t pick = kNoNode;
                    for (std::size_t i = 0; i < n; ++i)
                        if (!removed[i] &&
                            curDegree[i] < allowed[i].size()) {
                            pick = i;
                            break;
                        }
                    if (pick == kNoNode) {
                        // Spill-candidate heuristic: cheapest per unit
                        // of interference; never pick spill temps.
                        double best =
                            std::numeric_limits<double>::infinity();
                        for (std::size_t i = 0; i < n; ++i) {
                            if (removed[i])
                                continue;
                            const prog::ValueId v = graph.valueOf(i);
                            if (st.isTemp[v])
                                continue;
                            const double score =
                                costs[v] /
                                static_cast<double>(curDegree[i] + 1);
                            if (score < best) {
                                best = score;
                                pick = i;
                            }
                        }
                        if (pick == kNoNode) {
                            // Only temps left: push the max-degree one
                            // and hope optimistic coloring succeeds.
                            for (std::size_t i = 0; i < n; ++i)
                                if (!removed[i] &&
                                    (pick == kNoNode ||
                                     curDegree[i] > curDegree[pick]))
                                    pick = i;
                        }
                    }
                    MCA_ASSERT(pick != kNoNode, "simplify found no node");
                    removed[pick] = true;
                    stack.push_back(pick);
                    ++placed;
                    graph.forEachNeighbor(pick, [&](std::size_t nb) {
                        if (!removed[nb] && curDegree[nb] > 0)
                            --curDegree[nb];
                    });
                }

                // --- select (optimistic) ---------------------------
                std::vector<int> color(n, -1);
                for (std::size_t si = stack.size(); si-- > 0;) {
                    const std::size_t node = stack[si];
                    const prog::ValueId v = graph.valueOf(node);
                    std::vector<bool> used(isa::kNumArchRegs, false);
                    graph.forEachNeighbor(node, [&](std::size_t nb) {
                        if (color[nb] >= 0)
                            used[static_cast<unsigned>(color[nb])] = true;
                    });
                    int chosen = -1;
                    for (unsigned r : allowed[node])
                        if (!used[r]) {
                            chosen = static_cast<int>(r);
                            break;
                        }
                    if (chosen >= 0) {
                        color[node] = chosen;
                        st.regOf[v] =
                            isa::RegId(cls, static_cast<unsigned>(chosen));
                        continue;
                    }
                    // Coloring failed. Paper §3.4: spill first to a
                    // local register in the other cluster, then memory.
                    anyFailure = true;
                    if (st.clusterAware() && !st.respilled[v] &&
                        !st.isTemp[v]) {
                        st.respilled[v] = true;
                        const int cur = st.assignment.clusterOf(v);
                        const unsigned next =
                            (static_cast<unsigned>(cur < 0 ? 0 : cur) +
                             1) % st.map.numClusters();
                        st.assignment.cluster[v] =
                            static_cast<std::int8_t>(next);
                        ++result.otherClusterSpills;
                    } else {
                        toSpill.set(v);
                    }
                }
            }
        }

        if (!anyFailure) {
            result.rewritten = std::move(st.prog);
            result.regOf = std::move(st.regOf);
            result.finalAssignment = std::move(st.assignment);
            result.finalMap = st.map;
            result.spilledToMemory.assign(prog.values.size(), false);
            for (std::size_t v = 0; v < prog.values.size(); ++v)
                result.spilledToMemory[v] = st.spilled[v];
            result.rewritten.finalize();
            return result;
        }
        if (toSpill.count() > 0)
            rewriteSpills(st, toSpill, result);
        // Cluster reassignments alone also force another round.
    }
    MCA_FATAL("register allocation did not converge in ",
              options.maxRounds, " rounds");
}

prog::MachProgram
emitMachine(const AllocResult &alloc)
{
    const auto &prog = alloc.rewritten;
    prog::MachProgram mp;
    mp.name = prog.name;
    mp.streams = prog.streams;
    mp.branchModels = prog.branchModels;
    mp.codeBase = prog.codeBase;

    auto regFor = [&](prog::ValueId v,
                      isa::RegClass fallback) -> isa::RegId {
        if (v == prog::kNoValue)
            return isa::RegId(fallback,
                              fallback == isa::RegClass::Int
                                  ? isa::kIntZeroReg
                                  : isa::kFpZeroReg);
        return alloc.regOf[v];
    };

    mp.functions.reserve(prog.functions.size());
    for (const auto &fn : prog.functions) {
        prog::MachFunction mf;
        mf.id = fn.id;
        mf.name = fn.name;
        mf.blocks.reserve(fn.blocks.size());
        for (const auto &blk : fn.blocks) {
            prog::MachBlock mb;
            mb.id = blk.id;
            mb.name = blk.name;
            mb.succs = blk.succs;
            mb.succWeights = blk.succWeights;
            mb.weight = blk.weight;
            mb.instrs.reserve(blk.instrs.size());
            for (const auto &in : blk.instrs) {
                prog::MachEntry e;
                e.mi.op = in.op;
                e.mi.imm = in.imm;
                if (in.dest != prog::kNoValue)
                    e.mi.dest = alloc.regOf[in.dest];
                // Source classes: integer unless the op reads fp.
                for (unsigned i = 0; i < 2; ++i) {
                    if (in.srcs[i] == prog::kNoValue) {
                        // Memory ops always carry a base register slot.
                        const bool needs_slot =
                            (isa::isLoad(in.op) && i == 0) ||
                            (isa::isStore(in.op) && i == 1);
                        if (needs_slot)
                            e.mi.srcs[i] =
                                isa::intReg(isa::kIntZeroReg);
                        continue;
                    }
                    e.mi.srcs[i] =
                        regFor(in.srcs[i], isa::RegClass::Int);
                }
                e.stream = in.stream;
                e.branchModel = in.branchModel;
                e.callee = in.callee;
                e.origin = in.dest;
                e.isSpill =
                    in.stream != prog::kNoAddrStream &&
                    prog.streams[in.stream].kind ==
                        prog::AddrStream::Kind::Fixed &&
                    prog.streams[in.stream].base >= prog.spillBase;
                mb.instrs.push_back(std::move(e));
            }
            mf.blocks.push_back(std::move(mb));
        }
        mp.functions.push_back(std::move(mf));
    }
    mp.finalize();
    return mp;
}

} // namespace mca::compiler
