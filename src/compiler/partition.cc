#include "compiler/partition.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "support/panic.hh"

namespace mca::compiler
{

namespace
{

/** Clusters an instruction's known operands pin it to. */
void
knownClusters(const prog::Instr &in, const prog::Program &prog,
              const ClusterAssignment &assignment, unsigned num_clusters,
              std::vector<bool> &out, bool &dest_global)
{
    out.assign(num_clusters, false);
    dest_global = false;

    auto mark = [&](prog::ValueId v) {
        if (v == prog::kNoValue)
            return;
        if (prog.values[v].globalCandidate)
            return;
        const int c = assignment.clusterOf(v);
        if (c >= 0)
            out[static_cast<unsigned>(c)] = true;
    };

    for (prog::ValueId s : in.srcs)
        mark(s);
    if (in.dest != prog::kNoValue) {
        if (prog.values[in.dest].globalCandidate)
            dest_global = true;
        else
            mark(in.dest);
    }
}

/** Index of every instruction that reads or writes each value. */
struct UseDefIndex
{
    struct Site
    {
        prog::FunctionId fn;
        prog::BlockId blk;
        std::uint32_t idx;
    };

    std::vector<std::vector<Site>> sites;

    explicit UseDefIndex(const prog::Program &prog)
        : sites(prog.values.size())
    {
        for (std::size_t f = 0; f < prog.functions.size(); ++f)
            for (const auto &blk : prog.functions[f].blocks)
                for (std::uint32_t i = 0; i < blk.instrs.size(); ++i) {
                    const auto &in = blk.instrs[i];
                    auto add = [&](prog::ValueId v) {
                        if (v != prog::kNoValue)
                            sites[v].push_back(
                                {static_cast<prog::FunctionId>(f), blk.id,
                                 i});
                    };
                    add(in.dest);
                    // Avoid double-counting an instruction that reads the
                    // same value twice (e.g. B = A * A).
                    if (in.srcs[0] != prog::kNoValue)
                        add(in.srcs[0]);
                    if (in.srcs[1] != prog::kNoValue &&
                        in.srcs[1] != in.srcs[0])
                        add(in.srcs[1]);
                }
    }
};

} // namespace

void
PartitionOptions::validate() const
{
    if (numClusters == 0 ||
        numClusters > ClusterAssignment::kMaxClusters)
        throw std::runtime_error(
            "partitioner cluster count " + std::to_string(numClusters) +
            " out of range (accepted: 1.." +
            std::to_string(ClusterAssignment::kMaxClusters) +
            "; assignments are stored as int8_t)");
}

unsigned
estimateDistributionWidth(const prog::Instr &in, const prog::Program &prog,
                          const ClusterAssignment &assignment,
                          unsigned num_clusters)
{
    std::vector<bool> pinned;
    bool dest_global;
    knownClusters(in, prog, assignment, num_clusters, pinned, dest_global);
    if (dest_global)
        return num_clusters;
    unsigned n = 0;
    for (bool p : pinned)
        n += p ? 1 : 0;
    return n;
}

ClusterAssignment
localSchedule(const prog::Program &prog, const PartitionOptions &options,
              PartitionTrace *trace)
{
    options.validate();
    const unsigned nclusters = options.numClusters;

    ClusterAssignment assignment(prog.values.size());
    UseDefIndex index(prog);

    // Per-cluster totals, used only for vote tie-breaking.
    std::vector<std::uint64_t> totalAssigned(nclusters, 0);

    // ---- step 1: sort the blocks -----------------------------------
    struct BlockRef
    {
        prog::FunctionId fn;
        prog::BlockId blk;
        double weight;
        std::size_t size;
    };
    std::vector<BlockRef> order;
    for (std::size_t f = 0; f < prog.functions.size(); ++f)
        for (const auto &blk : prog.functions[f].blocks)
            order.push_back({static_cast<prog::FunctionId>(f), blk.id,
                             blk.weight, blk.instrs.size()});
    std::stable_sort(order.begin(), order.end(),
                     [](const BlockRef &a, const BlockRef &b) {
                         if (a.weight != b.weight)
                             return a.weight > b.weight;
                         return a.size > b.size;
                     });

    // ---- imbalance estimate (per-block vicinity) --------------------
    std::vector<bool> pinned;
    bool dest_global;
    auto blockCounts = [&](const prog::BasicBlock &blk,
                           std::uint32_t excluding,
                           std::vector<std::uint64_t> &counts) {
        counts.assign(nclusters, 0);
        for (std::uint32_t i = 0; i < blk.instrs.size(); ++i) {
            if (i == excluding)
                continue;
            knownClusters(blk.instrs[i], prog, assignment, nclusters,
                          pinned, dest_global);
            if (dest_global) {
                for (unsigned c = 0; c < nclusters; ++c)
                    ++counts[c];
                continue;
            }
            for (unsigned c = 0; c < nclusters; ++c)
                if (pinned[c])
                    ++counts[c];
        }
    };

    // ---- majority-preference vote ------------------------------------
    auto preferredCluster = [&](prog::ValueId v) -> unsigned {
        std::vector<std::uint64_t> votes(nclusters, 0);
        for (const auto &site : index.sites[v]) {
            const auto &in =
                prog.functions[site.fn].blocks[site.blk].instrs[site.idx];
            // The instruction prefers cluster c iff assigning v to c
            // makes it single-distributed: every *other* assigned local
            // operand already lives in exactly one cluster c (and the
            // destination is not a global candidate).
            std::vector<bool> others(nclusters, false);
            bool others_global_dest = false;
            auto markOther = [&](prog::ValueId o) {
                if (o == prog::kNoValue || o == v)
                    return;
                if (prog.values[o].globalCandidate)
                    return;
                const int c = assignment.clusterOf(o);
                if (c >= 0)
                    others[static_cast<unsigned>(c)] = true;
            };
            for (prog::ValueId s : in.srcs)
                markOther(s);
            if (in.dest != prog::kNoValue) {
                if (prog.values[in.dest].globalCandidate)
                    others_global_dest = true;
                else
                    markOther(in.dest);
            }
            if (others_global_dest)
                continue;   // dual no matter where v goes
            unsigned npinned = 0, last = 0;
            for (unsigned c = 0; c < nclusters; ++c)
                if (others[c]) {
                    ++npinned;
                    last = c;
                }
            if (npinned == 1)
                ++votes[last];
        }
        // Winner; ties go to the cluster with fewer assigned live ranges
        // overall, then to the lowest index.
        unsigned best = 0;
        for (unsigned c = 1; c < nclusters; ++c) {
            if (votes[c] > votes[best] ||
                (votes[c] == votes[best] &&
                 totalAssigned[c] < totalAssigned[best]))
                best = c;
        }
        return best;
    };

    auto assign = [&](prog::ValueId v, unsigned cluster) {
        assignment.cluster[v] = static_cast<std::int8_t>(cluster);
        ++totalAssigned[cluster];
        if (trace)
            trace->assignmentOrder.push_back(v);
    };

    // ---- steps 2-3: traverse blocks ----------------------------------
    std::vector<std::uint64_t> counts;
    for (const auto &ref : order) {
        if (trace)
            trace->blockOrder.emplace_back(ref.fn, ref.blk);
        const auto &blk = prog.functions[ref.fn].blocks[ref.blk];
        for (std::uint32_t i = static_cast<std::uint32_t>(blk.instrs.size());
             i-- > 0;) {
            const auto &in = blk.instrs[i];
            const prog::ValueId v = in.dest;
            if (v == prog::kNoValue || assignment.assigned(v) ||
                prog.values[v].globalCandidate)
                continue;

            blockCounts(blk, i, counts);
            const auto [mn, mx] =
                std::minmax_element(counts.begin(), counts.end());
            if (*mx - *mn > options.imbalanceThreshold) {
                // Unbalanced vicinity: feed the under-subscribed cluster.
                assign(v, static_cast<unsigned>(mn - counts.begin()));
            } else {
                assign(v, preferredCluster(v));
            }
        }

        // Refinement: during the bottom-up traversal the imbalance
        // estimate only sees the operands assigned so far, so a block
        // that repeats in the fetch stream (a hot loop body) can end up
        // statically lopsided without ever tripping the threshold. Fix
        // the block's final distribution by moving its cheapest live
        // ranges to the under-subscribed cluster until the spread is
        // within the threshold (balance dominates transfer cost —
        // paper §3).
        for (unsigned guard = 0; guard < 64; ++guard) {
            blockCounts(blk, ~std::uint32_t{0}, counts);
            const auto [mn, mx] =
                std::minmax_element(counts.begin(), counts.end());
            if (*mx - *mn <= options.imbalanceThreshold)
                break;
            const auto over =
                static_cast<unsigned>(mx - counts.begin());
            const auto under =
                static_cast<unsigned>(mn - counts.begin());
            // Cheapest candidate: a value written in this block,
            // currently in the over-subscribed cluster, with the fewest
            // reference sites (least new transfer traffic).
            prog::ValueId best = prog::kNoValue;
            std::size_t best_refs = ~std::size_t{0};
            for (const auto &in : blk.instrs) {
                const prog::ValueId v = in.dest;
                if (v == prog::kNoValue ||
                    prog.values[v].globalCandidate)
                    continue;
                if (assignment.clusterOf(v) !=
                    static_cast<int>(over))
                    continue;
                if (index.sites[v].size() < best_refs) {
                    best_refs = index.sites[v].size();
                    best = v;
                }
            }
            if (best == prog::kNoValue)
                break;
            --totalAssigned[static_cast<unsigned>(
                assignment.cluster[best])];
            assignment.cluster[best] = static_cast<std::int8_t>(under);
            ++totalAssigned[under];
        }
    }

    // ---- final pass: read-only live-ins -------------------------------
    for (prog::ValueId v = 0; v < prog.values.size(); ++v) {
        if (assignment.assigned(v) || prog.values[v].globalCandidate)
            continue;
        if (index.sites[v].empty())
            continue;   // never referenced; leave unassigned
        assign(v, preferredCluster(v));
    }

    return assignment;
}

ClusterAssignment
roundRobinSchedule(const prog::Program &prog,
                   const PartitionOptions &options)
{
    options.validate();
    ClusterAssignment assignment(prog.values.size());
    unsigned next = 0;
    for (prog::ValueId v = 0; v < prog.values.size(); ++v) {
        if (prog.values[v].globalCandidate)
            continue;
        assignment.cluster[v] = static_cast<std::int8_t>(next);
        next = (next + 1) % options.numClusters;
    }
    return assignment;
}

} // namespace mca::compiler
