#include "compiler/unroll.hh"

#include <map>

#include "support/panic.hh"

namespace mca::compiler
{

namespace
{

/** True if the block is an unrollable counted self-loop. */
bool
eligible(const prog::Program &prog, const prog::BasicBlock &blk)
{
    if (blk.instrs.size() < 2)
        return false;
    const auto &term = blk.instrs.back();
    if (!isa::isCondBranch(term.op))
        return false;
    if (blk.succs.size() != 2 || blk.succs[1] != blk.id)
        return false; // taken edge must be the self back edge
    if (term.branchModel == prog::kNoBranchModel)
        return false;
    const auto &model = prog.branchModels[term.branchModel];
    if (model.kind != prog::BranchModel::Kind::Loop || model.trip < 8)
        return false;
    for (const auto &in : blk.instrs)
        if (in.op == isa::Op::Jsr)
            return false;
    return true;
}

} // namespace

UnrollStats
unrollLoops(prog::Program &prog, unsigned factor)
{
    MCA_ASSERT(factor >= 2, "unroll factor must be >= 2");
    UnrollStats stats;

    for (auto &fn : prog.functions) {
        for (auto &blk : fn.blocks) {
            if (!eligible(prog, blk))
                continue;
            ++stats.loopsUnrolled;

            const std::vector<prog::Instr> body(
                blk.instrs.begin(), blk.instrs.end() - 1);
            const prog::Instr term = blk.instrs.back();

            // Values defined inside the body (in definition order).
            std::vector<prog::ValueId> defs;
            for (const auto &in : body)
                if (in.dest != prog::kNoValue)
                    defs.push_back(in.dest);

            std::vector<prog::Instr> out;
            out.reserve(body.size() * factor + 1);

            // current[v] = the live range holding v's value at this
            // point of the unrolled body (original id on entry).
            std::map<prog::ValueId, prog::ValueId> current;

            for (unsigned inst = 0; inst < factor; ++inst) {
                const bool last = (inst + 1 == factor);
                for (const auto &in : body) {
                    prog::Instr copy = in;
                    for (auto &src : copy.srcs) {
                        if (src == prog::kNoValue)
                            continue;
                        auto it = current.find(src);
                        if (it != current.end())
                            src = it->second;
                    }
                    if (copy.dest != prog::kNoValue) {
                        if (last) {
                            // The final instance restores the original
                            // names so the back edge and the loop exit
                            // see the expected live ranges.
                            current[in.dest] = in.dest;
                        } else {
                            prog::ValueInfo info =
                                prog.values[in.dest];
                            info.name += ".u" + std::to_string(inst);
                            prog.values.push_back(info);
                            const auto fresh =
                                static_cast<prog::ValueId>(
                                    prog.values.size() - 1);
                            current[in.dest] = fresh;
                            copy.dest = fresh;
                        }
                    }
                    out.push_back(copy);
                }
            }
            stats.instsAdded += out.size() + 1 - blk.instrs.size();

            // Back-edge trip count shrinks by the unroll factor.
            prog::Instr new_term = term;
            prog::BranchModel model = prog.branchModels[term.branchModel];
            model.trip = (model.trip + factor - 1) / factor;
            model.tripJitter /= factor;
            prog.branchModels.push_back(model);
            new_term.branchModel = static_cast<prog::BranchModelId>(
                prog.branchModels.size() - 1);
            out.push_back(new_term);

            blk.instrs = std::move(out);
        }
    }
    if (stats.loopsUnrolled > 0)
        prog.finalize();
    return stats;
}

} // namespace mca::compiler
