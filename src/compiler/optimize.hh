/**
 * @file
 * Conventional local optimizations (paper §3.2).
 *
 * The paper applies stock optimizations — common-subexpression
 * elimination, constant propagation — before any multicluster-specific
 * work, using existing techniques unchanged. These passes are the same:
 * purely local (per basic block) constant folding/propagation, local CSE
 * via available-expression tracking, and a program-wide dead-code
 * elimination. They run before scheduling and partitioning, so the
 * native and rescheduled binaries share the optimized IL.
 */

#ifndef MCA_COMPILER_OPTIMIZE_HH
#define MCA_COMPILER_OPTIMIZE_HH

#include <cstdint>

#include "prog/cfg.hh"

namespace mca::compiler
{

/** Aggregate effect of the optimization pipeline. */
struct OptStats
{
    std::uint64_t constantsFolded = 0;
    std::uint64_t immediatesPropagated = 0;
    std::uint64_t cseReplaced = 0;
    std::uint64_t copiesPropagated = 0;
    std::uint64_t deadRemoved = 0;
};

/** Fold/propagate constants inside each basic block. */
OptStats constantFold(prog::Program &prog);

/** Local common-subexpression elimination (replaces repeats with moves). */
OptStats localCse(prog::Program &prog);

/**
 * Copy propagation: forward Mov/MovF sources into the uses of their
 * destinations (block-local with proper kills, plus whole-program
 * propagation for single-definition values). Together with dead-code
 * elimination this subsumes most of the benefit of move coalescing in
 * the Briggs allocator, while staying cluster-independent so the
 * native and rescheduled binaries keep identical instruction paths.
 */
OptStats copyPropagate(prog::Program &prog);

/** Remove side-effect-free instructions whose results are never read. */
OptStats deadCodeElim(prog::Program &prog);

/** Run all passes to a fixed point (bounded) and sum their stats. */
OptStats optimizeProgram(prog::Program &prog, unsigned max_iters = 4);

} // namespace mca::compiler

#endif // MCA_COMPILER_OPTIMIZE_HH
