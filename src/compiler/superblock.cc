#include "compiler/superblock.hh"

#include <algorithm>
#include <vector>

#include "support/panic.hh"

namespace mca::compiler
{

namespace
{

/** Predecessor edge: block id + successor-slot index. */
struct PredEdge
{
    prog::BlockId from;
    std::size_t slot;
    double weight;
};

std::vector<std::vector<PredEdge>>
predecessors(const prog::Function &fn)
{
    std::vector<std::vector<PredEdge>> preds(fn.blocks.size());
    for (const auto &blk : fn.blocks)
        for (std::size_t i = 0; i < blk.succs.size(); ++i)
            preds[blk.succs[i]].push_back(
                {blk.id, i, blk.weight / blk.succs.size()});
    return preds;
}

/** One pass of tail duplication over a function. */
std::uint64_t
duplicateTails(prog::Function &fn, std::size_t size_budget,
               SuperblockStats &stats)
{
    std::uint64_t changed = 0;
    const auto preds = predecessors(fn);
    const std::size_t nblocks = fn.blocks.size();

    std::size_t current = 0;
    for (const auto &blk : fn.blocks)
        current += blk.instrs.size();

    // Hottest joins first, so a tight growth budget is spent where the
    // enlarged blocks matter.
    std::vector<prog::BlockId> joins;
    for (prog::BlockId j = 1; j < nblocks; ++j)
        if (preds[j].size() >= 2)
            joins.push_back(j);
    std::sort(joins.begin(), joins.end(),
              [&](prog::BlockId a, prog::BlockId b) {
                  if (fn.blocks[a].weight != fn.blocks[b].weight)
                      return fn.blocks[a].weight > fn.blocks[b].weight;
                  // Ties: larger joins buy more joint scheduling.
                  return fn.blocks[a].instrs.size() >
                         fn.blocks[b].instrs.size();
              });

    for (prog::BlockId j : joins) {
        const auto &incoming = preds[j];
        const std::size_t join_size = fn.blocks[j].instrs.size();
        if (join_size > 16 || join_size == 0)
            continue;
        // Keep self-loops intact.
        bool self = false;
        for (const auto &e : incoming)
            self |= (e.from == j);
        if (self)
            continue;
        // The hottest edge keeps the original; every other edge gets a
        // private clone.
        const auto hot = std::max_element(
            incoming.begin(), incoming.end(),
            [](const PredEdge &a, const PredEdge &b) {
                return a.weight < b.weight;
            });
        for (const auto &e : incoming) {
            if (&e == &*hot)
                continue;
            if (e.weight <= 0)
                continue; // never clone for dead edges
            if (current + join_size > size_budget)
                return changed;
            prog::BasicBlock clone = fn.blocks[j];
            clone.id = static_cast<prog::BlockId>(fn.blocks.size());
            clone.name += ".t" + std::to_string(e.from);
            clone.weight = e.weight;
            fn.blocks.push_back(std::move(clone));
            fn.blocks[e.from].succs[e.slot] = fn.blocks.back().id;
            fn.blocks[j].weight =
                std::max(1.0, fn.blocks[j].weight - e.weight);
            current += join_size;
            ++stats.tailsDuplicated;
            stats.instsAdded += join_size;
            ++changed;
        }
    }
    return changed;
}

/** One pass of straightening over a function. */
std::uint64_t
straighten(prog::Function &fn, SuperblockStats &stats)
{
    std::uint64_t changed = 0;
    const auto preds = predecessors(fn);
    std::vector<bool> dead(fn.blocks.size(), false);

    for (auto &blk : fn.blocks) {
        if (dead[blk.id] || blk.succs.size() != 1)
            continue;
        const prog::BlockId s = blk.succs[0];
        if (s == blk.id || s == prog::Function::kEntry || dead[s] ||
            preds[s].size() != 1)
            continue;
        const auto term = blk.terminatorOp();
        if (term != isa::Op::Nop && term != isa::Op::Br)
            continue; // calls cannot be straightened through

        // Drop the unconditional branch, splice the successor in.
        auto &succ = fn.blocks[s];
        if (term == isa::Op::Br)
            blk.instrs.pop_back();
        blk.instrs.insert(blk.instrs.end(), succ.instrs.begin(),
                          succ.instrs.end());
        blk.succs = succ.succs;
        blk.succWeights = succ.succWeights;
        // The successor becomes unreachable dead code; keep the CFG
        // shape valid but never merge through it again.
        succ.instrs.clear();
        succ.succs = {blk.id};
        succ.succWeights.clear();
        succ.weight = 0;
        dead[s] = true;
        ++stats.blocksMerged;
        ++changed;
    }
    return changed;
}

} // namespace

SuperblockStats
formSuperblocks(prog::Program &prog, double max_growth)
{
    MCA_ASSERT(max_growth >= 1.0, "growth bound below 1");
    SuperblockStats stats;

    for (auto &fn : prog.functions) {
        std::size_t base = 0;
        for (const auto &blk : fn.blocks)
            base += blk.instrs.size();
        const auto budget =
            static_cast<std::size_t>(max_growth * static_cast<double>(
                                                      std::max<std::size_t>(
                                                          base, 8)));

        for (unsigned round = 0; round < 4; ++round) {
            std::size_t current = 0;
            for (const auto &blk : fn.blocks)
                current += blk.instrs.size();
            std::uint64_t changed = 0;
            if (current < budget)
                changed += duplicateTails(fn, budget, stats);
            changed += straighten(fn, stats);
            if (changed == 0)
                break;
        }
    }
    prog.finalize();
    return stats;
}

} // namespace mca::compiler
