/**
 * @file
 * Prepass (pre-register-allocation) list scheduling.
 *
 * Per §3.3 the code schedule is fixed before live ranges are partitioned
 * and allocated, because the local scheduler's imbalance estimate depends
 * on the instruction order. This pass performs classic latency-weighted
 * list scheduling within each basic block: a dependence DAG (true, anti,
 * output, and memory-order edges) is built, instructions are prioritized
 * by critical-path height, and a machine of configurable width is
 * simulated to pick issue order.
 */

#ifndef MCA_COMPILER_SCHEDULE_HH
#define MCA_COMPILER_SCHEDULE_HH

#include <cstdint>

#include "prog/cfg.hh"

namespace mca::compiler
{

struct ScheduleOptions
{
    /** Nominal machine width used when packing cycles. */
    unsigned width = 8;
};

struct ScheduleStats
{
    std::uint64_t blocksScheduled = 0;
    std::uint64_t instsMoved = 0;
};

/**
 * Reorder instructions inside each basic block. Control-flow terminators
 * stay last; all data, anti, output, and memory-order dependences are
 * preserved.
 */
ScheduleStats listSchedule(prog::Program &prog,
                           const ScheduleOptions &options = {});

} // namespace mca::compiler

#endif // MCA_COMPILER_SCHEDULE_HH
