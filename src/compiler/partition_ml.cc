#include "compiler/partition_ml.hh"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/panic.hh"

namespace mca::compiler
{

namespace
{

constexpr std::uint32_t kNo = ~std::uint32_t{0};

struct Edge
{
    std::uint32_t to;
    std::uint64_t weight;
};

/** One level of the coarsening hierarchy. */
struct LevelGraph
{
    std::vector<std::uint64_t> nodeWeight;
    std::vector<std::vector<Edge>> adj;

    std::size_t numNodes() const { return nodeWeight.size(); }
};

/**
 * Mutable refinement state for one level: the assignment, per-cluster
 * weights, per-node connectivity to every cluster, and the running
 * cut. All invariants are maintained incrementally by move().
 */
struct RefineState
{
    const LevelGraph &g;
    unsigned k;
    std::vector<std::uint32_t> part;          ///< node -> cluster
    std::vector<std::uint64_t> partWeight;
    std::vector<std::uint64_t> conn;          ///< node*k + cluster
    std::uint64_t cut = 0;

    RefineState(const LevelGraph &graph, unsigned nclusters,
                std::vector<std::uint32_t> assignment)
        : g(graph), k(nclusters), part(std::move(assignment)),
          partWeight(nclusters, 0), conn(graph.numNodes() * nclusters, 0)
    {
        for (std::size_t u = 0; u < g.numNodes(); ++u) {
            partWeight[part[u]] += g.nodeWeight[u];
            for (const auto &e : g.adj[u]) {
                conn[u * k + part[e.to]] += e.weight;
                if (e.to > u && part[e.to] != part[u])
                    cut += e.weight;
            }
        }
    }

    std::int64_t
    gainOf(std::uint32_t u, std::uint32_t to) const
    {
        return static_cast<std::int64_t>(conn[u * k + to]) -
               static_cast<std::int64_t>(conn[u * k + part[u]]);
    }

    void
    move(std::uint32_t u, std::uint32_t to)
    {
        const std::uint32_t from = part[u];
        if (from == to)
            return;
        cut = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(cut) - gainOf(u, to));
        part[u] = to;
        partWeight[from] -= g.nodeWeight[u];
        partWeight[to] += g.nodeWeight[u];
        for (const auto &e : g.adj[u]) {
            conn[e.to * k + from] -= e.weight;
            conn[e.to * k + to] += e.weight;
        }
    }
};

/** Heavy-edge matching; returns the coarse graph and fine->coarse map. */
LevelGraph
coarsen(const LevelGraph &g, std::uint64_t max_pair_weight,
        std::vector<std::uint32_t> &fine_to_coarse)
{
    const std::size_t n = g.numNodes();
    std::vector<std::uint32_t> match(n, kNo);
    fine_to_coarse.assign(n, kNo);

    std::uint32_t coarse_n = 0;
    for (std::uint32_t u = 0; u < n; ++u) {
        if (match[u] != kNo)
            continue;
        // Heaviest affinity edge to an unmatched partner that keeps
        // the merged node small enough to place later; ties prefer the
        // lighter partner, then the lower id.
        std::uint32_t best = kNo;
        std::uint64_t best_w = 0;
        for (const auto &e : g.adj[u]) {
            if (match[e.to] != kNo || e.to == u)
                continue;
            if (g.nodeWeight[u] + g.nodeWeight[e.to] > max_pair_weight)
                continue;
            if (best == kNo || e.weight > best_w ||
                (e.weight == best_w &&
                 (g.nodeWeight[e.to] < g.nodeWeight[best] ||
                  (g.nodeWeight[e.to] == g.nodeWeight[best] &&
                   e.to < best)))) {
                best = e.to;
                best_w = e.weight;
            }
        }
        match[u] = u;
        fine_to_coarse[u] = coarse_n;
        if (best != kNo) {
            match[best] = u;
            fine_to_coarse[best] = coarse_n;
        }
        ++coarse_n;
    }

    LevelGraph coarse;
    coarse.nodeWeight.assign(coarse_n, 0);
    coarse.adj.assign(coarse_n, {});
    for (std::uint32_t u = 0; u < n; ++u)
        coarse.nodeWeight[fine_to_coarse[u]] += g.nodeWeight[u];

    std::unordered_map<std::uint64_t, std::uint64_t> edges;
    for (std::uint32_t u = 0; u < n; ++u) {
        const std::uint32_t cu = fine_to_coarse[u];
        for (const auto &e : g.adj[u]) {
            if (e.to <= u)
                continue;
            const std::uint32_t cv = fine_to_coarse[e.to];
            if (cu == cv)
                continue;
            const std::uint64_t key =
                cu < cv ? (static_cast<std::uint64_t>(cu) << 32) | cv
                        : (static_cast<std::uint64_t>(cv) << 32) | cu;
            edges[key] += e.weight;
        }
    }
    for (const auto &[key, weight] : edges) {
        const auto a = static_cast<std::uint32_t>(key >> 32);
        const auto b = static_cast<std::uint32_t>(key & 0xffffffffu);
        coarse.adj[a].push_back({b, weight});
        coarse.adj[b].push_back({a, weight});
    }
    for (auto &list : coarse.adj)
        std::sort(list.begin(), list.end(),
                  [](const Edge &x, const Edge &y) { return x.to < y.to; });
    return coarse;
}

/** Greedy balanced initial partition of the coarsest graph. */
std::vector<std::uint32_t>
initialPartition(const LevelGraph &g, unsigned k, std::uint64_t cap)
{
    const std::size_t n = g.numNodes();
    std::vector<std::uint32_t> order(n);
    for (std::uint32_t u = 0; u < n; ++u)
        order[u] = u;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return g.nodeWeight[a] > g.nodeWeight[b];
                     });

    std::vector<std::uint32_t> part(n, kNo);
    std::vector<std::uint64_t> partWeight(k, 0);
    std::vector<std::uint64_t> aff(k);
    for (const std::uint32_t u : order) {
        std::fill(aff.begin(), aff.end(), 0);
        for (const auto &e : g.adj[u])
            if (part[e.to] != kNo)
                aff[part[e.to]] += e.weight;
        // Strongest affinity among clusters with room; ties go to the
        // lighter cluster, then the lower index. If nothing fits the
        // cap (a single huge node), take the lightest cluster.
        std::uint32_t best = kNo;
        for (std::uint32_t c = 0; c < k; ++c) {
            if (partWeight[c] + g.nodeWeight[u] > cap)
                continue;
            if (best == kNo || aff[c] > aff[best] ||
                (aff[c] == aff[best] && partWeight[c] < partWeight[best]))
                best = c;
        }
        if (best == kNo) {
            best = 0;
            for (std::uint32_t c = 1; c < k; ++c)
                if (partWeight[c] < partWeight[best])
                    best = c;
        }
        part[u] = best;
        partWeight[best] += g.nodeWeight[u];
    }
    return part;
}

/**
 * Restore the balance cap if the initial partition (or a projection)
 * overflowed it: move the cheapest nodes out of overweight clusters.
 */
void
rebalance(RefineState &st, std::uint64_t cap)
{
    const std::size_t n = st.g.numNodes();
    // A cluster none of whose nodes fit anywhere else is stuck at its
    // current weight (discrete node weights make the cap best-effort);
    // skip it and keep draining the others.
    std::vector<bool> stuck(st.k, false);
    for (unsigned guard = 0; guard < n + 1; ++guard) {
        std::uint32_t over = kNo;
        for (std::uint32_t c = 0; c < st.k; ++c)
            if (!stuck[c] && st.partWeight[c] > cap &&
                (over == kNo || st.partWeight[c] > st.partWeight[over]))
                over = c;
        if (over == kNo)
            return;
        // Cheapest legal escape: the (node, target) pair losing the
        // least affinity, target must stay within the cap.
        std::uint32_t best_u = kNo, best_t = 0;
        std::int64_t best_gain = 0;
        for (std::uint32_t u = 0; u < n; ++u) {
            if (st.part[u] != over)
                continue;
            for (std::uint32_t t = 0; t < st.k; ++t) {
                if (t == over ||
                    st.partWeight[t] + st.g.nodeWeight[u] > cap)
                    continue;
                const std::int64_t gain = st.gainOf(u, t);
                if (best_u == kNo || gain > best_gain) {
                    best_u = u;
                    best_t = t;
                    best_gain = gain;
                }
            }
        }
        if (best_u == kNo) {
            stuck[over] = true;
            continue;
        }
        st.move(best_u, best_t);
    }
}

/** One FM pass with rollback to the best prefix; returns the gain. */
std::int64_t
fmPass(RefineState &st, std::uint64_t cap)
{
    const std::size_t n = st.g.numNodes();
    std::vector<bool> locked(n, false);

    struct Move
    {
        std::uint32_t u, from, to;
        std::int64_t gain;
    };
    std::vector<Move> moves;
    std::int64_t cum = 0, best_cum = 0;
    std::size_t best_len = 0;

    for (std::size_t step = 0; step < n; ++step) {
        std::uint32_t best_u = kNo, best_t = 0;
        std::int64_t best_gain = 0;
        for (std::uint32_t u = 0; u < n; ++u) {
            if (locked[u])
                continue;
            const std::uint32_t cur = st.part[u];
            for (std::uint32_t t = 0; t < st.k; ++t) {
                if (t == cur ||
                    st.partWeight[t] + st.g.nodeWeight[u] > cap)
                    continue;
                const std::int64_t gain = st.gainOf(u, t);
                if (best_u == kNo || gain > best_gain)
                {
                    best_u = u;
                    best_t = t;
                    best_gain = gain;
                }
            }
        }
        if (best_u == kNo)
            break;
        moves.push_back({best_u, st.part[best_u], best_t, best_gain});
        st.move(best_u, best_t);
        locked[best_u] = true;
        cum += best_gain;
        if (cum > best_cum) {
            best_cum = cum;
            best_len = moves.size();
        }
        // A long run of fruitless hill-descending rarely recovers;
        // bound the tail instead of moving every node every pass.
        if (moves.size() - best_len > 64)
            break;
    }

    for (std::size_t i = moves.size(); i-- > best_len;)
        st.move(moves[i].u, moves[i].from);
    return best_cum;
}

/** Greedy positive-gain sweep for levels too big for full FM. */
std::int64_t
greedyPass(RefineState &st, std::uint64_t cap)
{
    std::int64_t total = 0;
    for (std::uint32_t u = 0; u < st.g.numNodes(); ++u) {
        const std::uint32_t cur = st.part[u];
        std::uint32_t best = cur;
        std::int64_t best_gain = 0;
        for (std::uint32_t t = 0; t < st.k; ++t) {
            if (t == cur || st.partWeight[t] + st.g.nodeWeight[u] > cap)
                continue;
            const std::int64_t gain = st.gainOf(u, t);
            if (gain > best_gain) {
                best = t;
                best_gain = gain;
            }
        }
        if (best != cur) {
            st.move(u, best);
            total += best_gain;
        }
    }
    return total;
}

} // namespace

PartitionStats
scorePartition(const AffinityGraph &graph,
               const ClusterAssignment &assignment, unsigned num_clusters)
{
    PartitionStats stats;
    stats.cutWeight = cutWeight(graph, assignment);
    stats.totalEdgeWeight = graph.totalEdgeWeight;
    stats.balance = balanceOf(graph, assignment, num_clusters);
    stats.numNodes = graph.numNodes();
    stats.numClusters = num_clusters;
    return stats;
}

ClusterAssignment
multilevelPartition(const prog::Program &prog,
                    const PartitionOptions &options, PartitionStats *stats,
                    const MultilevelOptions &ml)
{
    options.validate();
    const unsigned k = options.numClusters;
    const AffinityGraph affinity = buildAffinityGraph(prog);
    ClusterAssignment assignment(prog.values.size());

    const std::size_t n = affinity.numNodes();
    if (n == 0) {
        if (stats)
            *stats = scorePartition(affinity, assignment, k);
        return assignment;
    }
    if (k == 1) {
        for (const prog::ValueId v : affinity.nodeValue)
            assignment.cluster[v] = 0;
        if (stats)
            *stats = scorePartition(affinity, assignment, k);
        return assignment;
    }

    // ---- level 0: the affinity graph itself -------------------------
    std::vector<LevelGraph> levels(1);
    levels[0].nodeWeight = affinity.nodeWeight;
    levels[0].adj.assign(n, {});
    for (std::size_t u = 0; u < n; ++u)
        for (const auto &e : affinity.adj[u])
            levels[0].adj[u].push_back({e.to, e.weight});

    // Balance cap, shared by every phase. Total node weight is
    // invariant under coarsening, so one cap fits all levels.
    std::uint64_t max_node = 0;
    for (const std::uint64_t w : affinity.nodeWeight)
        max_node = std::max(max_node, w);
    const double ideal =
        static_cast<double>(affinity.totalNodeWeight) / k;
    const std::uint64_t cap = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(ideal * (1.0 + ml.balanceTolerance)) + 1,
        max_node);

    // ---- phase 1: coarsen -------------------------------------------
    const std::size_t stop =
        std::max<std::size_t>(ml.coarsenTarget, 8 * std::size_t{k});
    // A merged node bigger than an ideal cluster could never be placed.
    const std::uint64_t max_pair =
        std::max<std::uint64_t>(affinity.totalNodeWeight / k, 1);
    std::vector<std::vector<std::uint32_t>> maps;   // maps[i]: level i -> i+1
    while (levels.back().numNodes() > stop && levels.size() < 48) {
        std::vector<std::uint32_t> map;
        LevelGraph coarse = coarsen(levels.back(), max_pair, map);
        // Diminishing returns: stop when matching barely shrinks.
        if (coarse.numNodes() >
            levels.back().numNodes() - levels.back().numNodes() / 20)
            break;
        levels.push_back(std::move(coarse));
        maps.push_back(std::move(map));
    }

    // ---- phase 2: initial partition on the coarsest graph -----------
    std::vector<std::uint32_t> part =
        initialPartition(levels.back(), k, cap);
    std::uint64_t initial_cut = 0;
    {
        const LevelGraph &g = levels.back();
        for (std::uint32_t u = 0; u < g.numNodes(); ++u)
            for (const auto &e : g.adj[u])
                if (e.to > u && part[e.to] != part[u])
                    initial_cut += e.weight;
    }

    // ---- phase 3: uncoarsen + refine --------------------------------
    unsigned fm_passes = 0;
    std::uint64_t final_cut = initial_cut;
    for (std::size_t level = levels.size(); level-- > 0;) {
        if (level + 1 < levels.size()) {
            // Project the coarser level's assignment down.
            const std::vector<std::uint32_t> &map = maps[level];
            std::vector<std::uint32_t> fine(levels[level].numNodes());
            for (std::uint32_t u = 0; u < fine.size(); ++u)
                fine[u] = part[map[u]];
            part = std::move(fine);
        }
        RefineState st(levels[level], k, std::move(part));
        rebalance(st, cap);
        const bool exhaustive =
            st.g.numNodes() <= ml.fmExhaustiveLimit;
        for (unsigned pass = 0; pass < ml.fmMaxPasses; ++pass) {
            const std::int64_t gain =
                exhaustive ? fmPass(st, cap) : greedyPass(st, cap);
            ++fm_passes;
            if (gain <= 0)
                break;
        }
        final_cut = st.cut;
        part = std::move(st.part);
    }

    for (std::uint32_t u = 0; u < n; ++u)
        assignment.cluster[affinity.nodeValue[u]] =
            static_cast<std::int8_t>(part[u]);

    if (stats) {
        *stats = scorePartition(affinity, assignment, k);
        MCA_ASSERT(stats->cutWeight == final_cut,
                   "multilevel cut bookkeeping diverged from the graph");
        stats->initialCutWeight = initial_cut;
        stats->fmGain = initial_cut >= final_cut
                            ? initial_cut - final_cut
                            : 0;
        stats->fmPasses = fm_passes;
        stats->coarsenLevels =
            static_cast<unsigned>(levels.size() - 1);
    }
    return assignment;
}

} // namespace mca::compiler
