/**
 * @file
 * Versioned snapshot container for full-machine checkpoints.
 *
 * A Snapshot is an opaque payload (produced by the components'
 * Checkpointable::saveState chain) plus the configuration hash of the
 * machine that produced it. The on-disk format is:
 *
 *   bytes  0..7   magic "MCACKPT1"
 *   bytes  8..11  format version (little-endian u32, currently 1)
 *   bytes 12..19  configuration hash (u64)
 *   bytes 20..27  payload length (u64)
 *   ...           payload
 *   trailer       FNV-1a 64 content hash of everything above (u64)
 *
 * readFrom() validates magic, version, length, and the content hash;
 * SnapshotParser validates the configuration hash against the machine
 * doing the restore. Every failure throws std::runtime_error with a
 * message naming what disagreed.
 */

#ifndef MCA_CKPT_SNAPSHOT_HH
#define MCA_CKPT_SNAPSHOT_HH

#include <cstdint>
#include <iosfwd>
#include <string>

#include "ckpt/io.hh"

namespace mca::ckpt
{

/** Current on-disk format version. */
inline constexpr std::uint32_t kFormatVersion = 1;

struct Snapshot
{
    /** Hash of the producing machine's configuration. */
    std::uint64_t configHash = 0;
    /** Serialized component state (Writer-encoded). */
    std::string payload;

    /** Deterministic hash of header + payload (the file trailer). */
    std::uint64_t contentHash() const;

    /** Serialize in the on-disk format (header + payload + trailer). */
    void writeTo(std::ostream &os) const;
    /** Write to a file path; throws std::runtime_error on I/O failure. */
    void saveFile(const std::string &path) const;

    /** Parse and validate; throws std::runtime_error on any mismatch. */
    static Snapshot readFrom(std::istream &is);
    /** Read from a file path; throws std::runtime_error on failure. */
    static Snapshot loadFile(const std::string &path);
};

/** Accumulates component sections into a Snapshot. */
class SnapshotBuilder
{
  public:
    explicit SnapshotBuilder(std::uint64_t config_hash)
        : configHash_(config_hash)
    {}

    Writer &w() { return w_; }

    /** Open a named section (writes its sync marker). */
    void section(const char (&fourcc)[5]) { w_.tag(fourcc); }

    Snapshot
    finish()
    {
        return Snapshot{configHash_, w_.take()};
    }

  private:
    std::uint64_t configHash_;
    Writer w_;
};

/** Walks a Snapshot's sections for restore. */
class SnapshotParser
{
  public:
    /**
     * @param snap  The snapshot; must outlive the parser.
     * @param expect_config_hash  The restoring machine's configuration
     *        hash; throws std::runtime_error if it differs from the
     *        producer's (restoring onto a different machine shape).
     */
    SnapshotParser(const Snapshot &snap, std::uint64_t expect_config_hash);

    Reader &r() { return r_; }

    /** Expect a named section marker; throws when out of sync. */
    void section(const char (&fourcc)[5]) { r_.tag(fourcc); }

    /** Assert the payload was fully consumed. */
    void finish();

  private:
    Reader r_;
};

} // namespace mca::ckpt

#endif // MCA_CKPT_SNAPSHOT_HH
