#include "ckpt/snapshot.hh"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "prof/prof.hh"

namespace mca::ckpt
{

namespace
{

constexpr char kMagic[8] = {'M', 'C', 'A', 'C', 'K', 'P', 'T', '1'};

[[noreturn]] void
bad(const std::string &what)
{
    throw std::runtime_error("checkpoint: " + what);
}

/** Header encoding shared by writeTo and contentHash. */
std::string
encodeHeader(const Snapshot &snap)
{
    Writer w;
    for (char c : kMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u32(kFormatVersion);
    w.u64(snap.configHash);
    w.u64(snap.payload.size());
    return w.take();
}

} // namespace

std::uint64_t
Snapshot::contentHash() const
{
    const std::string header = encodeHeader(*this);
    std::uint64_t h = fnv1a(header.data(), header.size());
    return fnv1a(payload.data(), payload.size(), h);
}

void
Snapshot::writeTo(std::ostream &os) const
{
    const std::string header = encodeHeader(*this);
    os.write(header.data(),
             static_cast<std::streamsize>(header.size()));
    os.write(payload.data(),
             static_cast<std::streamsize>(payload.size()));
    Writer trailer;
    trailer.u64(contentHash());
    os.write(trailer.data().data(),
             static_cast<std::streamsize>(trailer.data().size()));
}

void
Snapshot::saveFile(const std::string &path) const
{
    PROF_SCOPE("ckpt.save_file");
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        bad("cannot open '" + path + "' for writing");
    writeTo(os);
    os.flush();
    if (!os)
        bad("write to '" + path + "' failed");
}

Snapshot
Snapshot::readFrom(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string file = buf.str();

    Reader r(file);
    for (char c : kMagic)
        if (r.pos() + 1 > file.size() || r.u8() != static_cast<std::uint8_t>(c))
            bad("bad magic (not a checkpoint file)");
    const std::uint32_t version = r.u32();
    if (version != kFormatVersion)
        bad("format version " + std::to_string(version) +
            " unsupported (expected " + std::to_string(kFormatVersion) +
            ")");
    Snapshot snap;
    snap.configHash = r.u64();
    const std::uint64_t len = r.u64();
    if (r.pos() + len + 8 != file.size())
        bad("payload length " + std::to_string(len) +
            " inconsistent with file size " + std::to_string(file.size()));
    snap.payload.assign(file.data() + r.pos(), len);
    const std::string tail(file.data() + r.pos() + len, 8);
    Reader tr(tail);
    const std::uint64_t stored = tr.u64();
    const std::uint64_t computed = snap.contentHash();
    if (stored != computed)
        bad("content hash mismatch (file corrupt)");
    return snap;
}

Snapshot
Snapshot::loadFile(const std::string &path)
{
    PROF_SCOPE("ckpt.load_file");
    std::ifstream is(path, std::ios::binary);
    if (!is)
        bad("cannot open '" + path + "'");
    return readFrom(is);
}

SnapshotParser::SnapshotParser(const Snapshot &snap,
                               std::uint64_t expect_config_hash)
    : r_(snap.payload)
{
    if (snap.configHash != expect_config_hash)
        bad("configuration hash mismatch: snapshot was taken on a "
            "differently configured machine");
}

void
SnapshotParser::finish()
{
    if (!r_.atEnd())
        bad("trailing bytes after last section (offset " +
            std::to_string(r_.pos()) + ")");
}

} // namespace mca::ckpt
