#include "ckpt/io.hh"

#include <stdexcept>

namespace mca::ckpt
{

std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t seed)
{
    constexpr std::uint64_t kPrime = 1099511628211ull;
    std::uint64_t h = seed;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kPrime;
    }
    return h;
}

namespace
{

[[noreturn]] void
corrupt(const std::string &what)
{
    throw std::runtime_error("checkpoint: " + what);
}

} // namespace

std::uint64_t
Reader::le(unsigned n)
{
    if (pos_ + n > data_->size())
        corrupt("truncated payload (wanted " + std::to_string(n) +
                " bytes at offset " + std::to_string(pos_) + ", have " +
                std::to_string(data_->size() - pos_) + ")");
    std::uint64_t v = 0;
    for (unsigned i = 0; i < n; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>((*data_)[pos_ + i]))
             << (8 * i);
    pos_ += n;
    return v;
}

std::string
Reader::str()
{
    const std::uint64_t n = u64();
    if (pos_ + n > data_->size())
        corrupt("truncated string (length " + std::to_string(n) +
                " at offset " + std::to_string(pos_) + ")");
    std::string s(data_->data() + pos_, n);
    pos_ += n;
    return s;
}

void
Reader::tag(const char (&fourcc)[5])
{
    if (pos_ + 4 > data_->size())
        corrupt(std::string("truncated before section '") + fourcc + "'");
    const std::string got(data_->data() + pos_, 4);
    if (got != std::string(fourcc, 4))
        corrupt(std::string("section sync lost: expected '") + fourcc +
                "' at offset " + std::to_string(pos_) + ", found '" + got +
                "'");
    pos_ += 4;
}

} // namespace mca::ckpt
