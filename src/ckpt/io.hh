/**
 * @file
 * Primitive binary serialization for checkpoints.
 *
 * Writer/Reader encode scalars as fixed-width little-endian byte
 * sequences regardless of host endianness, so a snapshot taken on one
 * machine restores bit-identically on another. Four-byte section tags
 * ("CORE", "MEMS", ...) are interleaved with the data as sync markers:
 * a reader that drifts out of phase with the writer fails loudly at
 * the next tag instead of silently misinterpreting bytes.
 *
 * All decode failures throw std::runtime_error (never MCA_PANIC): a
 * truncated or corrupt checkpoint file is an input error the caller —
 * a CLI or a test — must be able to catch and report.
 */

#ifndef MCA_CKPT_IO_HH
#define MCA_CKPT_IO_HH

#include <bit>
#include <cstdint>
#include <string>

namespace mca::ckpt
{

/** FNV-1a 64-bit hash of a byte range, chainable through `seed`. */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t seed = 14695981039346656037ull);

/** Appends little-endian scalars to an in-memory byte buffer. */
class Writer
{
  public:
    Writer() = default;

    void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
    void u16(std::uint16_t v) { le(v, 2); }
    void u32(std::uint32_t v) { le(v, 4); }
    void u64(std::uint64_t v) { le(v, 8); }
    void i64(std::int64_t v) { le(static_cast<std::uint64_t>(v), 8); }
    void f64(double v) { le(std::bit_cast<std::uint64_t>(v), 8); }
    void b(bool v) { u8(v ? 1 : 0); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        out_.append(s);
    }

    /** Emit a four-byte section sync marker. */
    void tag(const char (&fourcc)[5]) { out_.append(fourcc, 4); }

    const std::string &data() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    void
    le(std::uint64_t v, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    std::string out_;
};

/** Decodes a Writer-produced byte buffer; throws on any mismatch. */
class Reader
{
  public:
    /** The buffer must outlive the reader. */
    explicit Reader(const std::string &data) : data_(&data) {}

    std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
    std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
    std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
    std::uint64_t u64() { return le(8); }
    std::int64_t i64() { return static_cast<std::int64_t>(le(8)); }
    double f64() { return std::bit_cast<double>(le(8)); }
    bool b() { return u8() != 0; }

    std::string str();

    /** Consume a section marker; throws naming both tags on mismatch. */
    void tag(const char (&fourcc)[5]);

    bool atEnd() const { return pos_ == data_->size(); }
    std::size_t pos() const { return pos_; }

  private:
    std::uint64_t le(unsigned n);

    const std::string *data_;
    std::size_t pos_ = 0;
};

/**
 * A component whose dynamic state can round-trip through a snapshot.
 *
 * The contract: loadState() on an identically configured component
 * must reproduce the saved component exactly — a subsequent resume is
 * bit-identical to never having snapshotted (tests/ckpt_test.cc holds
 * every implementation to it via the lockstep machinery).
 */
struct Checkpointable
{
    virtual ~Checkpointable() = default;

    /** Append this component's dynamic state. */
    virtual void saveState(Writer &w) const = 0;

    /** Restore state saved by an identically configured component. */
    virtual void loadState(Reader &r) = 0;
};

} // namespace mca::ckpt

#endif // MCA_CKPT_IO_HH
