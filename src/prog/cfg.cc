#include "prog/cfg.hh"

#include <cstdio>

#include "support/panic.hh"

namespace mca::prog
{

namespace
{

/** Validate terminator/successor agreement for one block. */
template <typename BlockT>
void
checkBlockShape(const std::string &prog_name, FunctionId fn,
                const BlockT &blk)
{
    const isa::Op term = blk.terminatorOp();
    const std::size_t nsucc = blk.succs.size();
    auto bad = [&](const char *why) {
        MCA_PANIC("program '", prog_name, "' fn ", fn, " block ", blk.id,
                  " ('", blk.name, "'): ", why);
    };

    if (isa::isCondBranch(term)) {
        if (nsucc != 2)
            bad("conditional branch needs exactly 2 successors");
    } else if (term == isa::Op::Br) {
        if (nsucc != 1)
            bad("unconditional branch needs exactly 1 successor");
    } else if (term == isa::Op::Jmp) {
        if (nsucc < 1)
            bad("indirect jump needs at least 1 successor");
        if (!blk.succWeights.empty() && blk.succWeights.size() != nsucc)
            bad("succWeights size must match successor count");
    } else if (term == isa::Op::Jsr) {
        if (nsucc != 1)
            bad("call needs exactly 1 continuation successor");
    } else if (term == isa::Op::Ret) {
        if (nsucc != 0)
            bad("return must have no successors");
    } else {
        // Fall-through block.
        if (nsucc != 1)
            bad("fall-through block needs exactly 1 successor");
    }
}

} // namespace

std::size_t
Program::staticInstCount() const
{
    std::size_t n = 0;
    for (const auto &fn : functions)
        for (const auto &blk : fn.blocks)
            n += blk.instrs.size();
    return n;
}

void
Program::finalize()
{
    MCA_ASSERT(!functions.empty(), "program has no functions");
    Addr pc = codeBase;
    for (auto &fn : functions) {
        MCA_ASSERT(!fn.blocks.empty(), "function '", fn.name,
                   "' has no blocks");
        for (auto &blk : fn.blocks) {
            blk.startPc = pc;
            pc += 4 * blk.instrs.size();
            checkBlockShape(name, fn.id, blk);
            for (const auto &in : blk.instrs) {
                if (isa::isMemOp(in.op) && in.stream == kNoAddrStream)
                    MCA_PANIC("memory op without address stream in '",
                              name, "'");
                if (in.stream != kNoAddrStream)
                    MCA_ASSERT(in.stream < streams.size(),
                               "dangling stream id");
                if (isa::isCondBranch(in.op) &&
                    in.branchModel == kNoBranchModel)
                    MCA_PANIC("conditional branch without model in '",
                              name, "'");
                if (in.branchModel != kNoBranchModel)
                    MCA_ASSERT(in.branchModel < branchModels.size(),
                               "dangling branch model id");
                if (in.op == isa::Op::Jsr)
                    MCA_ASSERT(in.callee != kNoFunction &&
                                   in.callee < functions.size(),
                               "call without valid callee");
                if (in.dest != kNoValue)
                    MCA_ASSERT(in.dest < values.size(), "dangling dest");
                for (ValueId s : in.srcs)
                    if (s != kNoValue)
                        MCA_ASSERT(s < values.size(), "dangling source");
            }
            for (BlockId s : blk.succs)
                MCA_ASSERT(s < fn.blocks.size(), "dangling successor");
        }
    }
}

std::size_t
MachProgram::staticInstCount() const
{
    std::size_t n = 0;
    for (const auto &fn : functions)
        for (const auto &blk : fn.blocks)
            n += blk.instrs.size();
    return n;
}

void
MachProgram::finalize()
{
    MCA_ASSERT(!functions.empty(), "machine program has no functions");
    Addr pc = codeBase;
    for (auto &fn : functions) {
        for (auto &blk : fn.blocks) {
            blk.startPc = pc;
            pc += 4 * blk.instrs.size();
            checkBlockShape(name, fn.id, blk);
        }
    }
}

namespace
{

/** Successor list rendering shared by both dumpers. */
template <typename BlockT>
std::string
succString(const BlockT &blk)
{
    if (blk.succs.empty())
        return "";
    std::string out = "  -> ";
    for (std::size_t i = 0; i < blk.succs.size(); ++i) {
        if (i)
            out += ", ";
        out += "bb" + std::to_string(blk.succs[i]);
    }
    return out;
}

} // namespace

std::string
dumpProgram(const Program &prog)
{
    std::string out = "program '" + prog.name + "'\n";
    auto vname = [&](ValueId v) {
        if (v == kNoValue)
            return std::string("_");
        const auto &info = prog.values[v];
        std::string n = info.name.empty() ? "v" + std::to_string(v)
                                          : info.name;
        if (info.globalCandidate)
            n += "!";
        return n;
    };
    for (const auto &fn : prog.functions) {
        out += "fn " + fn.name + ":\n";
        for (const auto &blk : fn.blocks) {
            out += "  bb" + std::to_string(blk.id);
            if (!blk.name.empty())
                out += " '" + blk.name + "'";
            out += " (w=" + std::to_string(
                static_cast<long long>(blk.weight)) + ")" +
                succString(blk) + "\n";
            for (const auto &in : blk.instrs) {
                out += "    ";
                out += std::string(isa::opName(in.op));
                if (in.dest != kNoValue)
                    out += " " + vname(in.dest) + " <-";
                for (auto s : in.srcs)
                    if (s != kNoValue)
                        out += " " + vname(s);
                if (in.imm != 0 || isa::isMemOp(in.op))
                    out += " #" + std::to_string(in.imm);
                if (in.stream != kNoAddrStream)
                    out += " @s" + std::to_string(in.stream);
                if (in.callee != kNoFunction)
                    out += " -> " + prog.functions[in.callee].name;
                out += "\n";
            }
        }
    }
    return out;
}

std::string
dumpProgram(const MachProgram &prog)
{
    std::string out = "binary '" + prog.name + "'\n";
    for (const auto &fn : prog.functions) {
        out += "fn " + fn.name + ":\n";
        for (const auto &blk : fn.blocks) {
            out += "  bb" + std::to_string(blk.id) + " @0x";
            char pc[32];
            std::snprintf(pc, sizeof(pc), "%llx",
                          static_cast<unsigned long long>(blk.startPc));
            out += pc;
            out += succString(blk) + "\n";
            for (const auto &e : blk.instrs) {
                out += "    " + e.mi.toString();
                if (e.isSpill)
                    out += "  ; spill";
                out += "\n";
            }
        }
    }
    return out;
}

} // namespace mca::prog
