#include "prog/builder.hh"

#include "support/panic.hh"

namespace mca::prog
{

Builder::Builder(std::string program_name)
{
    prog_.name = std::move(program_name);
}

ValueId
Builder::makeValue(isa::RegClass cls, std::string name, bool global,
                   bool live_in)
{
    ValueInfo info;
    info.cls = cls;
    info.name = std::move(name);
    info.globalCandidate = global;
    info.liveIn = live_in;
    prog_.values.push_back(std::move(info));
    return static_cast<ValueId>(prog_.values.size() - 1);
}

ValueId
Builder::value(isa::RegClass cls, std::string name)
{
    return makeValue(cls, std::move(name), false, false);
}

ValueId
Builder::liveInValue(isa::RegClass cls, std::string name)
{
    return makeValue(cls, std::move(name), false, true);
}

ValueId
Builder::globalValue(isa::RegClass cls, std::string name)
{
    // Global-register candidates (SP/GP) are always live-in: they exist
    // before the simulated region starts.
    return makeValue(cls, std::move(name), true, true);
}

void
Builder::markGlobalCandidate(ValueId v)
{
    MCA_ASSERT(v < prog_.values.size(), "markGlobalCandidate: bad value");
    prog_.values[v].globalCandidate = true;
}

AddrStreamId
Builder::stream(const AddrStream &s)
{
    prog_.streams.push_back(s);
    return static_cast<AddrStreamId>(prog_.streams.size() - 1);
}

BranchModelId
Builder::branch(const BranchModel &m)
{
    prog_.branchModels.push_back(m);
    return static_cast<BranchModelId>(prog_.branchModels.size() - 1);
}

FunctionId
Builder::function(std::string name)
{
    Function fn;
    fn.id = static_cast<FunctionId>(prog_.functions.size());
    fn.name = std::move(name);
    prog_.functions.push_back(std::move(fn));
    return prog_.functions.back().id;
}

BlockId
Builder::block(FunctionId fn, double weight, std::string name)
{
    MCA_ASSERT(fn < prog_.functions.size(), "block in unknown function");
    auto &blocks = prog_.functions[fn].blocks;
    BasicBlock blk;
    blk.id = static_cast<BlockId>(blocks.size());
    blk.weight = weight;
    blk.name = std::move(name);
    blocks.push_back(std::move(blk));
    return blocks.back().id;
}

void
Builder::setInsertPoint(FunctionId fn, BlockId blk)
{
    MCA_ASSERT(fn < prog_.functions.size(), "insert point: bad function");
    MCA_ASSERT(blk < prog_.functions[fn].blocks.size(),
               "insert point: bad block");
    curFn_ = fn;
    curBlk_ = blk;
}

BasicBlock &
Builder::cursor()
{
    MCA_ASSERT(curFn_ != kNoFunction, "no insert point set");
    return prog_.functions[curFn_].blocks[curBlk_];
}

ValueId
Builder::emitRRR(isa::Op op, ValueId src1, ValueId src2,
                 std::string dest_name)
{
    const isa::RegClass cls = prog_.values[src1].cls;
    const ValueId dest = value(cls, std::move(dest_name));
    emitRRRTo(dest, op, src1, src2);
    return dest;
}

void
Builder::emitRRRTo(ValueId dest, isa::Op op, ValueId src1, ValueId src2)
{
    Instr in;
    in.op = op;
    in.dest = dest;
    in.srcs = {src1, src2};
    cursor().instrs.push_back(in);
}

ValueId
Builder::emitRRI(isa::Op op, ValueId src, std::int64_t imm,
                 std::string dest_name)
{
    const isa::RegClass cls = prog_.values[src].cls;
    const ValueId dest = value(cls, std::move(dest_name));
    emitRRITo(dest, op, src, imm);
    return dest;
}

void
Builder::emitRRITo(ValueId dest, isa::Op op, ValueId src, std::int64_t imm)
{
    Instr in;
    in.op = op;
    in.dest = dest;
    in.srcs = {src, kNoValue};
    in.imm = imm;
    cursor().instrs.push_back(in);
}

ValueId
Builder::emitConst(isa::RegClass cls, std::int64_t imm,
                   std::string dest_name)
{
    const ValueId dest = value(cls, std::move(dest_name));
    Instr in;
    in.op = cls == isa::RegClass::Int ? isa::Op::Lda : isa::Op::CvtIF;
    in.dest = dest;
    in.imm = imm;
    cursor().instrs.push_back(in);
    return dest;
}

ValueId
Builder::emitLoad(isa::Op op, AddrStreamId stream, ValueId base,
                  std::string dest_name)
{
    const isa::RegClass cls =
        op == isa::Op::Ldt ? isa::RegClass::Fp : isa::RegClass::Int;
    const ValueId dest = value(cls, std::move(dest_name));
    emitLoadTo(dest, op, stream, base);
    return dest;
}

void
Builder::emitLoadTo(ValueId dest, isa::Op op, AddrStreamId stream,
                    ValueId base)
{
    MCA_ASSERT(isa::isLoad(op), "emitLoad with non-load op");
    Instr in;
    in.op = op;
    in.dest = dest;
    in.srcs = {base, kNoValue};
    in.stream = stream;
    cursor().instrs.push_back(in);
}

void
Builder::emitStore(isa::Op op, ValueId data, AddrStreamId stream,
                   ValueId base)
{
    MCA_ASSERT(isa::isStore(op), "emitStore with non-store op");
    Instr in;
    in.op = op;
    in.srcs = {data, base};
    in.stream = stream;
    cursor().instrs.push_back(in);
}

void
Builder::emitBranch(isa::Op op, ValueId cond, BranchModelId model)
{
    MCA_ASSERT(isa::isCondBranch(op), "emitBranch with non-branch op");
    Instr in;
    in.op = op;
    in.srcs = {cond, kNoValue};
    in.branchModel = model;
    cursor().instrs.push_back(in);
}

void
Builder::emitBr()
{
    Instr in;
    in.op = isa::Op::Br;
    cursor().instrs.push_back(in);
}

void
Builder::emitJmp(ValueId target)
{
    Instr in;
    in.op = isa::Op::Jmp;
    in.srcs = {target, kNoValue};
    cursor().instrs.push_back(in);
}

void
Builder::emitJsr(FunctionId callee)
{
    Instr in;
    in.op = isa::Op::Jsr;
    in.callee = callee;
    cursor().instrs.push_back(in);
}

void
Builder::emitRet()
{
    Instr in;
    in.op = isa::Op::Ret;
    cursor().instrs.push_back(in);
}

void
Builder::emitNop()
{
    Instr in;
    in.op = isa::Op::Nop;
    cursor().instrs.push_back(in);
}

void
Builder::emitRaw(const Instr &in)
{
    cursor().instrs.push_back(in);
}

void
Builder::edge(FunctionId fn, BlockId from, BlockId to)
{
    MCA_ASSERT(fn < prog_.functions.size(), "edge: bad function");
    auto &blocks = prog_.functions[fn].blocks;
    MCA_ASSERT(from < blocks.size() && to < blocks.size(),
               "edge: bad block id");
    blocks[from].succs.push_back(to);
}

void
Builder::succWeights(FunctionId fn, BlockId blk, std::vector<double> w)
{
    MCA_ASSERT(fn < prog_.functions.size(), "succWeights: bad function");
    auto &blocks = prog_.functions[fn].blocks;
    MCA_ASSERT(blk < blocks.size(), "succWeights: bad block");
    blocks[blk].succWeights = std::move(w);
}

Program
Builder::build()
{
    MCA_ASSERT(!built_, "Builder::build called twice");
    built_ = true;
    prog_.finalize();
    return std::move(prog_);
}

} // namespace mca::prog
