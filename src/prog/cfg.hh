/**
 * @file
 * Program representation: IL instructions, basic blocks, functions.
 *
 * A Program is the unit the compiler stack consumes: a set of functions,
 * each a control-flow graph of basic blocks whose IL instructions name
 * live ranges (ValueId), plus the tables of branch-behaviour models and
 * memory-address streams that give the program its dynamic behaviour.
 */

#ifndef MCA_PROG_CFG_HH
#define MCA_PROG_CFG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/inst.hh"
#include "isa/opcodes.hh"
#include "prog/addr_stream.hh"
#include "prog/branch_model.hh"
#include "prog/value.hh"
#include "support/types.hh"

namespace mca::prog
{

using FunctionId = std::uint32_t;
using BlockId = std::uint32_t;

inline constexpr FunctionId kNoFunction = ~FunctionId{0};

/**
 * One IL instruction. IL instructions correspond one-to-one to machine
 * instructions but name live ranges instead of architectural registers
 * (paper §3.1 step 2).
 */
struct Instr
{
    isa::Op op = isa::Op::Nop;
    ValueId dest = kNoValue;
    std::array<ValueId, 2> srcs = {kNoValue, kNoValue};
    std::int64_t imm = 0;
    /** Address stream for memory operations. */
    AddrStreamId stream = kNoAddrStream;
    /** Behaviour model for conditional branches. */
    BranchModelId branchModel = kNoBranchModel;
    /** Callee for Jsr instructions. */
    FunctionId callee = kNoFunction;

    bool hasDest() const { return dest != kNoValue; }

    unsigned
    numSrcs() const
    {
        return (srcs[0] != kNoValue ? 1u : 0u) +
               (srcs[1] != kNoValue ? 1u : 0u);
    }
};

/**
 * A basic block: straight-line instructions plus ordered successors.
 *
 * Successor conventions:
 *  - conditional branch terminator: succs[0] = fall-through (not taken),
 *    succs[1] = taken target;
 *  - Br terminator or plain fall-through: succs[0] = the single successor;
 *  - Jmp terminator: any number of successors, selected by succWeights;
 *  - Jsr terminator: succs[0] = return continuation;
 *  - Ret terminator: no successors.
 */
struct BasicBlock
{
    BlockId id = 0;
    std::string name;
    std::vector<Instr> instrs;
    std::vector<BlockId> succs;
    /** Selection weights for indirect jumps (empty = uniform). */
    std::vector<double> succWeights;
    /**
     * Estimated executions of the block's first instruction — the sort
     * key of the local scheduler (§3.5). Seeded by the generator and
     * optionally replaced by a measured profile.
     */
    double weight = 1.0;
    /** Start PC assigned by Program::finalize(). */
    Addr startPc = 0;

    /** Terminator opcode, or Nop if the block falls through. */
    isa::Op
    terminatorOp() const
    {
        if (instrs.empty())
            return isa::Op::Nop;
        const isa::Op op = instrs.back().op;
        return isa::isCtrlFlow(op) ? op : isa::Op::Nop;
    }
};

/** A function: an entry block plus its CFG. */
struct Function
{
    FunctionId id = 0;
    std::string name;
    std::vector<BasicBlock> blocks;

    static constexpr BlockId kEntry = 0;
};

/** A whole program (IL level). */
struct Program
{
    std::string name;
    std::vector<Function> functions;
    std::vector<ValueInfo> values;
    std::vector<AddrStream> streams;
    std::vector<BranchModel> branchModels;
    /** Base address of the code segment (PC assignment). */
    Addr codeBase = 0x0010'0000;
    /** Base address reserved for compiler-inserted spill slots. */
    Addr spillBase = 0x7fff'0000;

    static constexpr FunctionId kMain = 0;

    const ValueInfo &
    valueInfo(ValueId v) const
    {
        return values.at(v);
    }

    /** Total static instruction count across all functions. */
    std::size_t staticInstCount() const;

    /**
     * Assign PCs to every block/instruction (4 bytes per instruction,
     * functions laid out contiguously from codeBase) and validate
     * structural invariants. Panics on malformed programs.
     */
    void finalize();
};

/**
 * One machine instruction inside a compiled (register-allocated) program,
 * carrying the same dynamic-behaviour references as its IL origin.
 */
struct MachEntry
{
    isa::MachInst mi;
    AddrStreamId stream = kNoAddrStream;
    BranchModelId branchModel = kNoBranchModel;
    FunctionId callee = kNoFunction;
    /**
     * Live range the destination was colored from (diagnostics), or
     * kNoValue for spill/reload code.
     */
    ValueId origin = kNoValue;
    /** True for compiler-inserted spill loads/stores. */
    bool isSpill = false;
};

/** Machine-level basic block (same CFG shape as the IL block). */
struct MachBlock
{
    BlockId id = 0;
    std::string name;
    std::vector<MachEntry> instrs;
    std::vector<BlockId> succs;
    std::vector<double> succWeights;
    double weight = 1.0;
    Addr startPc = 0;

    isa::Op
    terminatorOp() const
    {
        if (instrs.empty())
            return isa::Op::Nop;
        const isa::Op op = instrs.back().mi.op;
        return isa::isCtrlFlow(op) ? op : isa::Op::Nop;
    }
};

/** Machine-level function. */
struct MachFunction
{
    FunctionId id = 0;
    std::string name;
    std::vector<MachBlock> blocks;
};

/**
 * A compiled program: the executable the timing simulator runs. Shares
 * the IL program's stream/branch-model tables so native and rescheduled
 * binaries replay identical dynamic behaviour.
 */
struct MachProgram
{
    std::string name;
    std::vector<MachFunction> functions;
    std::vector<AddrStream> streams;
    std::vector<BranchModel> branchModels;
    Addr codeBase = 0x0010'0000;

    std::size_t staticInstCount() const;

    /** Assign PCs (same layout rule as Program::finalize). */
    void finalize();
};

/** Render the IL program as readable text (debugging aid). */
std::string dumpProgram(const Program &prog);

/** Render a compiled program's disassembly. */
std::string dumpProgram(const MachProgram &prog);

} // namespace mca::prog

#endif // MCA_PROG_CFG_HH
