/**
 * @file
 * Values (live ranges) of the intermediate language.
 *
 * Following the paper's methodology, IL instructions name live ranges
 * rather than architectural registers; the compiler later partitions the
 * live ranges across clusters and colors them onto registers. Each Value
 * in a program is one live range (a def-use web produced directly by the
 * workload generators).
 */

#ifndef MCA_PROG_VALUE_HH
#define MCA_PROG_VALUE_HH

#include <cstdint>
#include <string>

#include "isa/registers.hh"

namespace mca::prog
{

/** Live-range identifier; index into Program's value table. */
using ValueId = std::uint32_t;

inline constexpr ValueId kNoValue = ~ValueId{0};

/** Metadata for one live range. */
struct ValueInfo
{
    /** Register class the live range must be colored into. */
    isa::RegClass cls = isa::RegClass::Int;
    /** Optional name for diagnostics and the Figure-6 reproduction. */
    std::string name;
    /**
     * True for live ranges designated as global-register candidates
     * (step 3 of the paper's methodology: the stack- and global-pointer
     * live ranges).
     */
    bool globalCandidate = false;
    /**
     * True for values that must be materialized before the program region
     * starts (incoming arguments, the SP/GP themselves). They are live-in
     * to the entry block.
     */
    bool liveIn = false;
};

} // namespace mca::prog

#endif // MCA_PROG_VALUE_HH
