#include "prog/verify.hh"

#include <sstream>

#include "isa/opcodes.hh"
#include "support/bitset.hh"

namespace mca::prog
{

namespace
{

class Checker
{
  public:
    Checker(const Program &prog, const VerifyOptions &options,
            VerifyResult &result)
        : prog_(prog), opt_(options), out_(result)
    {}

    void
    run()
    {
        checkStructure();
        // Dataflow over a structurally broken CFG would index out of
        // range; stop at the structural findings instead.
        if (!out_.errors.empty())
            return;
        kind_ = VerifyErrorKind::Locality;
        checkLocality();
        if (opt_.checkDefBeforeUse) {
            kind_ = VerifyErrorKind::DefBeforeUse;
            checkDefBeforeUse();
        }
        if (opt_.clusterOf) {
            kind_ = VerifyErrorKind::Partition;
            checkPartition();
        }
        if (opt_.regOf) {
            kind_ = VerifyErrorKind::Allocation;
            checkAllocation();
        }
    }

  private:
    void
    error(std::string where, std::string message)
    {
        out_.errors.push_back(
            {kind_, std::move(where), std::move(message)});
    }

    std::string
    valueName(ValueId v) const
    {
        if (v < prog_.values.size() && !prog_.values[v].name.empty())
            return "'" + prog_.values[v].name + "'";
        return "v" + std::to_string(v);
    }

    std::string
    blockWhere(const Function &fn, const BasicBlock &blk) const
    {
        return "fn '" + fn.name + "' bb" + std::to_string(blk.id);
    }

    std::string
    instWhere(const Function &fn, const BasicBlock &blk,
              std::size_t i) const
    {
        return blockWhere(fn, blk) + " inst " + std::to_string(i) + " (" +
               std::string(isa::opName(blk.instrs[i].op)) + ")";
    }

    void
    checkStructure()
    {
        if (prog_.functions.empty()) {
            error("program '" + prog_.name + "'", "has no functions");
            return;
        }
        for (std::size_t f = 0; f < prog_.functions.size(); ++f) {
            const Function &fn = prog_.functions[f];
            if (fn.id != static_cast<FunctionId>(f))
                error("fn '" + fn.name + "'",
                      "function id " + std::to_string(fn.id) +
                          " does not match its table index " +
                          std::to_string(f));
            if (fn.blocks.empty()) {
                error("fn '" + fn.name + "'", "has no blocks");
                continue;
            }
            for (std::size_t b = 0; b < fn.blocks.size(); ++b)
                checkBlock(fn, fn.blocks[b], b);
        }
    }

    void
    checkBlock(const Function &fn, const BasicBlock &blk, std::size_t b)
    {
        const std::string where = blockWhere(fn, blk);
        if (blk.id != static_cast<BlockId>(b))
            error(where, "block id " + std::to_string(blk.id) +
                             " does not match its table index " +
                             std::to_string(b));

        for (BlockId s : blk.succs)
            if (s >= fn.blocks.size())
                error(where, "dangling CFG edge: successor bb" +
                                 std::to_string(s) +
                                 " does not exist (function has " +
                                 std::to_string(fn.blocks.size()) +
                                 " blocks)");

        checkTerminatorShape(fn, blk);

        for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
            const Instr &in = blk.instrs[i];
            const std::string iw = instWhere(fn, blk, i);

            if (isa::isCtrlFlow(in.op) && i + 1 != blk.instrs.size())
                error(iw, "control flow in the middle of a basic block");

            if (in.dest != kNoValue && in.dest >= prog_.values.size())
                error(iw, "dangling dest value v" +
                              std::to_string(in.dest));
            for (ValueId s : in.srcs)
                if (s != kNoValue && s >= prog_.values.size())
                    error(iw,
                          "dangling source value v" + std::to_string(s));

            if (isa::isMemOp(in.op) && in.stream == kNoAddrStream)
                error(iw, "memory op without an address stream");
            if (in.stream != kNoAddrStream &&
                in.stream >= prog_.streams.size())
                error(iw, "dangling address-stream id " +
                              std::to_string(in.stream));

            if (isa::isCondBranch(in.op) &&
                in.branchModel == kNoBranchModel)
                error(iw, "conditional branch without a branch model");
            if (in.branchModel != kNoBranchModel &&
                in.branchModel >= prog_.branchModels.size())
                error(iw, "dangling branch-model id " +
                              std::to_string(in.branchModel));

            if (in.op == isa::Op::Jsr &&
                (in.callee == kNoFunction ||
                 in.callee >= prog_.functions.size()))
                error(iw, "call without a valid callee");
        }
    }

    /** Successor-count conventions (same shapes finalize() asserts). */
    void
    checkTerminatorShape(const Function &fn, const BasicBlock &blk)
    {
        const std::string where = blockWhere(fn, blk);
        const isa::Op term = blk.terminatorOp();
        const std::size_t nsucc = blk.succs.size();

        if (isa::isCondBranch(term)) {
            if (nsucc != 2)
                error(where, "conditional branch needs exactly 2 "
                             "successors, has " +
                                 std::to_string(nsucc));
        } else if (term == isa::Op::Br) {
            if (nsucc != 1)
                error(where, "unconditional branch needs exactly 1 "
                             "successor, has " +
                                 std::to_string(nsucc));
        } else if (term == isa::Op::Jmp) {
            if (nsucc < 1)
                error(where, "indirect jump needs at least 1 successor");
        } else if (term == isa::Op::Jsr) {
            if (nsucc != 1)
                error(where, "call needs exactly 1 continuation "
                             "successor, has " +
                                 std::to_string(nsucc));
        } else if (term == isa::Op::Ret) {
            if (nsucc != 0)
                error(where, "return must have no successors, has " +
                                 std::to_string(nsucc));
        } else {
            if (nsucc != 1)
                error(where, "fall-through block needs exactly 1 "
                             "successor, has " +
                                 std::to_string(nsucc));
        }
        if (!blk.succWeights.empty() &&
            blk.succWeights.size() != nsucc)
            error(where, "succWeights size " +
                             std::to_string(blk.succWeights.size()) +
                             " does not match successor count " +
                             std::to_string(nsucc));
    }

    /** Each non-global live range belongs to exactly one function. */
    void
    checkLocality()
    {
        constexpr FunctionId kUnseen = kNoFunction;
        std::vector<FunctionId> home(prog_.values.size(), kUnseen);
        auto touch = [&](const Function &fn, const BasicBlock &blk,
                         std::size_t i, ValueId v) {
            if (v == kNoValue || v >= prog_.values.size())
                return;
            if (prog_.values[v].globalCandidate)
                return;
            if (home[v] == kUnseen) {
                home[v] = fn.id;
            } else if (home[v] != fn.id) {
                error(instWhere(fn, blk, i),
                      "local value " + valueName(v) +
                          " crosses functions (also used by fn '" +
                          prog_.functions[home[v]].name + "')");
            }
        };
        for (const auto &fn : prog_.functions)
            for (const auto &blk : fn.blocks)
                for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
                    const Instr &in = blk.instrs[i];
                    touch(fn, blk, i, in.dest);
                    for (ValueId s : in.srcs)
                        touch(fn, blk, i, s);
                }
    }

    /**
     * Forward must-define dataflow: a use is legal only if a definition
     * reaches it along every path from the function entry. Live-in and
     * global-candidate values are externally defined. Unreachable
     * blocks keep the full set and so never report (nothing executes
     * there).
     */
    void
    checkDefBeforeUse()
    {
        const std::size_t nvals = prog_.values.size();
        BitSet external(nvals);
        for (std::size_t v = 0; v < nvals; ++v)
            if (prog_.values[v].liveIn || prog_.values[v].globalCandidate)
                external.set(v);

        for (const auto &fn : prog_.functions)
            checkDefBeforeUseIn(fn, external);
    }

    void
    checkDefBeforeUseIn(const Function &fn, const BitSet &external)
    {
        const std::size_t nvals = prog_.values.size();
        const std::size_t nblocks = fn.blocks.size();

        // defIn[b]: values definitely assigned on entry to b. Non-entry
        // blocks start at the full set so the intersection over
        // predecessors can only shrink (standard must-analysis top).
        BitSet full(nvals);
        for (std::size_t v = 0; v < nvals; ++v)
            full.set(v);
        std::vector<BitSet> defIn(nblocks, full);
        defIn[Function::kEntry] = external;

        std::vector<std::vector<BlockId>> preds(nblocks);
        for (const auto &blk : fn.blocks)
            for (BlockId s : blk.succs)
                preds[s].push_back(blk.id);

        auto defOut = [&](BlockId b) {
            BitSet set = defIn[b];
            for (const auto &in : fn.blocks[b].instrs)
                if (in.dest != kNoValue)
                    set.set(in.dest);
            return set;
        };

        bool changed = true;
        while (changed) {
            changed = false;
            for (std::size_t b = 0; b < nblocks; ++b) {
                if (b == Function::kEntry || preds[b].empty())
                    continue;
                BitSet in = defOut(preds[b][0]);
                for (std::size_t p = 1; p < preds[b].size(); ++p) {
                    BitSet inv = defOut(preds[b][p]);
                    // in &= inv  (BitSet only has subtract; A&B ==
                    // A - (A - B)).
                    BitSet diff = in;
                    diff.subtract(inv);
                    in.subtract(diff);
                }
                if (!(in == defIn[b])) {
                    defIn[b] = std::move(in);
                    changed = true;
                }
            }
        }

        for (const auto &blk : fn.blocks) {
            BitSet defined = defIn[blk.id];
            for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
                const Instr &in = blk.instrs[i];
                for (ValueId s : in.srcs)
                    if (s != kNoValue && !defined.test(s))
                        error(instWhere(fn, blk, i),
                              "use of value " + valueName(s) +
                                  " before any definition reaches it");
                if (in.dest != kNoValue)
                    defined.set(in.dest);
            }
        }
    }

    void
    checkPartition()
    {
        const auto &cluster = *opt_.clusterOf;
        if (cluster.size() != prog_.values.size()) {
            error("partition", "cluster assignment covers " +
                                   std::to_string(cluster.size()) +
                                   " values but the program has " +
                                   std::to_string(prog_.values.size()));
            return;
        }
        for (std::size_t v = 0; v < cluster.size(); ++v) {
            const int c = cluster[v];
            if (c < -1 || c >= static_cast<int>(opt_.numClusters))
                error("value " + valueName(static_cast<ValueId>(v)),
                      "assigned to cluster " + std::to_string(c) +
                          " outside [-1, " +
                          std::to_string(opt_.numClusters) + ")");
            else if (c >= 0 && prog_.values[v].globalCandidate)
                error("value " + valueName(static_cast<ValueId>(v)),
                      "global-register candidate assigned to cluster " +
                          std::to_string(c));
        }
    }

    void
    checkAllocation()
    {
        const auto &regOf = *opt_.regOf;
        if (regOf.size() != prog_.values.size()) {
            error("regalloc", "register assignment covers " +
                                  std::to_string(regOf.size()) +
                                  " values but the program has " +
                                  std::to_string(prog_.values.size()));
            return;
        }
        const bool clustered =
            opt_.regMap && opt_.clusterOf &&
            opt_.clusterOf->size() == prog_.values.size();

        std::vector<bool> checked(prog_.values.size(), false);
        auto checkValue = [&](const Function &fn, const BasicBlock &blk,
                              std::size_t i, ValueId v) {
            if (v == kNoValue || v >= regOf.size() || checked[v])
                return;
            checked[v] = true;
            const isa::RegId reg = regOf[v];
            const std::string where = instWhere(fn, blk, i);
            if (reg.isZero()) {
                error(where, "value " + valueName(v) +
                                 " is referenced but was never colored "
                                 "onto a register");
                return;
            }
            if (reg.cls != prog_.values[v].cls) {
                error(where,
                      "value " + valueName(v) + " of class " +
                          std::string(prog_.values[v].cls ==
                                              isa::RegClass::Int
                                          ? "int"
                                          : "float") +
                          " colored onto " + isa::regName(reg));
                return;
            }
            if (!clustered)
                return;
            if (prog_.values[v].globalCandidate) {
                if (!opt_.regMap->isGlobal(reg))
                    error(where, "global-register candidate " +
                                     valueName(v) +
                                     " colored onto local register " +
                                     isa::regName(reg));
                return;
            }
            const int cluster = (*opt_.clusterOf)[v];
            if (cluster >= 0 && !opt_.regMap->isGlobal(reg) &&
                opt_.regMap->homeCluster(reg) !=
                    static_cast<unsigned>(cluster))
                error(where,
                      "cross-cluster local register: value " +
                          valueName(v) + " lives on cluster " +
                          std::to_string(cluster) + " but " + isa::regName(reg) +
                          " is homed on cluster " +
                          std::to_string(opt_.regMap->homeCluster(reg)));
        };

        for (const auto &fn : prog_.functions)
            for (const auto &blk : fn.blocks)
                for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
                    const Instr &in = blk.instrs[i];
                    checkValue(fn, blk, i, in.dest);
                    for (ValueId s : in.srcs)
                        checkValue(fn, blk, i, s);
                }
    }

    const Program &prog_;
    const VerifyOptions &opt_;
    VerifyResult &out_;
    VerifyErrorKind kind_ = VerifyErrorKind::Structure;
};

} // namespace

std::string
VerifyResult::str() const
{
    std::ostringstream oss;
    for (const auto &e : errors)
        oss << e.where << ": " << e.message << "\n";
    return oss.str();
}

VerifyResult
verifyIR(const Program &prog, const VerifyOptions &options)
{
    VerifyResult result;
    Checker(prog, options, result).run();
    return result;
}

} // namespace mca::prog
