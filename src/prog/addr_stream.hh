/**
 * @file
 * Memory-address stream models.
 *
 * Every static memory instruction in a program references an address
 * stream; the trace interpreter draws successive effective addresses from
 * the stream's state. Streams are deterministic given the walker seed and
 * independent of each other, so rescheduling (which adds spill streams but
 * never touches existing ones) leaves original address sequences intact.
 */

#ifndef MCA_PROG_ADDR_STREAM_HH
#define MCA_PROG_ADDR_STREAM_HH

#include <cstdint>

#include "support/panic.hh"
#include "support/random.hh"
#include "support/types.hh"

namespace mca::prog
{

/** Identifier of an address stream within a Program. */
using AddrStreamId = std::uint32_t;

inline constexpr AddrStreamId kNoAddrStream = ~AddrStreamId{0};

/** Static description of one memory instruction's address behaviour. */
struct AddrStream
{
    enum class Kind : std::uint8_t
    {
        /** Fixed address (a named scalar / spill slot). */
        Fixed,
        /** base + i*stride, wrapping at base + extent. */
        Stride,
        /** Uniformly random within [base, base + extent). */
        RandomIn,
        /**
         * Hash-table style: random element index, but successive accesses
         * revisit a recent index with probability pRevisit (temporal
         * locality knob used by the compress-like workload).
         */
        HashTable,
    };

    Kind kind = Kind::Fixed;
    Addr base = 0;
    std::uint64_t stride = 8;
    std::uint64_t extent = 8;
    double pRevisit = 0.0;

    static AddrStream
    fixed(Addr address)
    {
        AddrStream s;
        s.kind = Kind::Fixed;
        s.base = address;
        return s;
    }

    static AddrStream
    strided(Addr base, std::uint64_t stride, std::uint64_t extent)
    {
        MCA_ASSERT(extent >= stride && stride > 0, "bad stride stream");
        AddrStream s;
        s.kind = Kind::Stride;
        s.base = base;
        s.stride = stride;
        s.extent = extent;
        return s;
    }

    static AddrStream
    randomIn(Addr base, std::uint64_t extent)
    {
        MCA_ASSERT(extent >= 8, "random stream extent too small");
        AddrStream s;
        s.kind = Kind::RandomIn;
        s.base = base;
        s.extent = extent;
        return s;
    }

    static AddrStream
    hashTable(Addr base, std::uint64_t extent, double p_revisit)
    {
        MCA_ASSERT(extent >= 8, "hash stream extent too small");
        AddrStream s;
        s.kind = Kind::HashTable;
        s.base = base;
        s.extent = extent;
        s.pRevisit = p_revisit;
        return s;
    }
};

/** Runtime state of one address stream inside a walker. */
class AddrStreamState
{
  public:
    AddrStreamState(AddrStream stream, Rng rng)
        : stream_(stream), rng_(rng), last_(stream.base)
    {}

    /** Produce the next effective address (8-byte aligned). */
    Addr
    nextAddr()
    {
        switch (stream_.kind) {
          case AddrStream::Kind::Fixed:
            return stream_.base;
          case AddrStream::Kind::Stride: {
            const Addr a = stream_.base + offset_;
            offset_ += stream_.stride;
            if (offset_ >= stream_.extent)
                offset_ = 0;
            return a;
          }
          case AddrStream::Kind::RandomIn:
            return stream_.base +
                   (rng_.nextBelow(stream_.extent / 8) * 8);
          case AddrStream::Kind::HashTable: {
            if (rng_.nextBool(stream_.pRevisit))
                return last_;
            last_ = stream_.base + (rng_.nextBelow(stream_.extent / 8) * 8);
            return last_;
          }
          default:
            MCA_PANIC("bad address stream kind");
        }
    }

    // Dynamic-state access for checkpointing. The stream description
    // is static program content, reconstructed from the Program by id.
    const Rng &rng() const { return rng_; }
    std::uint64_t offset() const { return offset_; }
    Addr last() const { return last_; }

    void
    restoreDynamicState(const std::array<std::uint64_t, 4> &rng_state,
                        std::uint64_t offset, Addr last)
    {
        rng_.setRawState(rng_state);
        offset_ = offset;
        last_ = last;
    }

  private:
    AddrStream stream_;
    Rng rng_;
    std::uint64_t offset_ = 0;
    Addr last_;
};

} // namespace mca::prog

#endif // MCA_PROG_ADDR_STREAM_HH
