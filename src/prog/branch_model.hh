/**
 * @file
 * Branch-behaviour models.
 *
 * The trace interpreter resolves every conditional branch through one of
 * these models. The models are deterministic given the walker's seed, so
 * the native and rescheduled binaries of a program follow identical paths
 * (rescheduling only renames registers and adds spill code — exactly the
 * invariant the paper's ATOM methodology relies on). The mix of model
 * kinds controls how predictable a workload is to the McFarling predictor.
 */

#ifndef MCA_PROG_BRANCH_MODEL_HH
#define MCA_PROG_BRANCH_MODEL_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "support/panic.hh"
#include "support/random.hh"

namespace mca::prog
{

/** Identifier of a branch model within a Program. */
using BranchModelId = std::uint32_t;

inline constexpr BranchModelId kNoBranchModel = ~BranchModelId{0};

/** Static description of one branch's dynamic behaviour. */
struct BranchModel
{
    enum class Kind : std::uint8_t
    {
        AlwaysTaken,
        NeverTaken,
        /** Loop back-edge: taken (trip - 1) times, then falls through. */
        Loop,
        /** Independent coin flips with probability pTaken. */
        Bernoulli,
        /** Repeating T/NT pattern (predictable by global history). */
        Pattern,
    };

    Kind kind = Kind::NeverTaken;
    /** Loop trip count (Kind::Loop). */
    std::uint64_t trip = 1;
    /** Trip-count jitter: trips drawn uniformly in [trip-jitter, trip+jitter]. */
    std::uint64_t tripJitter = 0;
    /** Taken probability (Kind::Bernoulli). */
    double pTaken = 0.5;
    /** Repeating direction pattern (Kind::Pattern). */
    std::vector<bool> pattern;

    static BranchModel
    loop(std::uint64_t trip_count, std::uint64_t jitter = 0)
    {
        BranchModel m;
        m.kind = Kind::Loop;
        m.trip = trip_count;
        m.tripJitter = jitter;
        return m;
    }

    static BranchModel
    bernoulli(double p_taken)
    {
        BranchModel m;
        m.kind = Kind::Bernoulli;
        m.pTaken = p_taken;
        return m;
    }

    static BranchModel
    patterned(std::vector<bool> pat)
    {
        MCA_ASSERT(!pat.empty(), "empty branch pattern");
        BranchModel m;
        m.kind = Kind::Pattern;
        m.pattern = std::move(pat);
        return m;
    }

    static BranchModel
    always()
    {
        BranchModel m;
        m.kind = Kind::AlwaysTaken;
        return m;
    }

    static BranchModel
    never()
    {
        BranchModel m;
        m.kind = Kind::NeverTaken;
        return m;
    }
};

/**
 * Runtime state of one branch model inside a walker.
 *
 * Each instance owns a forked Rng so outcome streams are independent of
 * the order in which other models draw.
 */
class BranchModelState
{
  public:
    BranchModelState(BranchModel model, Rng rng)
        : model_(std::move(model)), rng_(rng)
    {
        resetTrip();
    }

    /** Resolve the next dynamic instance of this branch. */
    bool
    nextOutcome()
    {
        switch (model_.kind) {
          case BranchModel::Kind::AlwaysTaken:
            return true;
          case BranchModel::Kind::NeverTaken:
            return false;
          case BranchModel::Kind::Loop:
            if (remaining_ > 0) {
                --remaining_;
                return true;    // back edge taken
            }
            resetTrip();
            return false;       // loop exit
          case BranchModel::Kind::Bernoulli:
            return rng_.nextBool(model_.pTaken);
          case BranchModel::Kind::Pattern: {
            const bool out = model_.pattern[patternPos_];
            patternPos_ = (patternPos_ + 1) % model_.pattern.size();
            return out;
          }
          default:
            MCA_PANIC("bad branch model kind");
        }
    }

    // Dynamic-state access for checkpointing. The model itself is
    // static program content, reconstructed from the Program by id.
    const Rng &rng() const { return rng_; }
    std::uint64_t remainingTrips() const { return remaining_; }
    std::size_t patternPos() const { return patternPos_; }

    void
    restoreDynamicState(const std::array<std::uint64_t, 4> &rng_state,
                        std::uint64_t remaining, std::size_t pattern_pos)
    {
        rng_.setRawState(rng_state);
        remaining_ = remaining;
        patternPos_ = pattern_pos;
    }

  private:
    void
    resetTrip()
    {
        std::uint64_t trip = model_.trip;
        if (model_.tripJitter > 0) {
            const std::uint64_t lo = trip > model_.tripJitter
                                         ? trip - model_.tripJitter
                                         : 1;
            trip = lo + rng_.nextBelow(2 * model_.tripJitter + 1);
        }
        remaining_ = trip > 0 ? trip - 1 : 0;
    }

    BranchModel model_;
    Rng rng_;
    std::uint64_t remaining_ = 0;
    std::size_t patternPos_ = 0;
};

} // namespace mca::prog

#endif // MCA_PROG_BRANCH_MODEL_HH
