/**
 * @file
 * Fluent construction API for IL programs.
 *
 * The workload generators and tests build programs through this class
 * rather than poking CFG structures directly; build() validates and
 * finalizes the result.
 */

#ifndef MCA_PROG_BUILDER_HH
#define MCA_PROG_BUILDER_HH

#include <string>

#include "prog/cfg.hh"

namespace mca::prog
{

class Builder
{
  public:
    explicit Builder(std::string program_name);

    // --- declarations -----------------------------------------------

    /** Declare a live range. */
    ValueId value(isa::RegClass cls, std::string name = "");

    /** Declare a live-in live range (defined before the region starts). */
    ValueId liveInValue(isa::RegClass cls, std::string name = "");

    /** Declare a global-register candidate live range (e.g. SP, GP). */
    ValueId globalValue(isa::RegClass cls, std::string name = "");

    /**
     * Promote an existing live range to a global-register candidate
     * (paper §2.1: globals suit "other commonly used variables" too).
     */
    void markGlobalCandidate(ValueId v);

    /** Register an address stream and return its id. */
    AddrStreamId stream(const AddrStream &s);

    /** Register a branch model and return its id. */
    BranchModelId branch(const BranchModel &m);

    /** Create a function; the first created function is main. */
    FunctionId function(std::string name);

    /** Create a block inside `fn` with a profile weight. */
    BlockId block(FunctionId fn, double weight = 1.0,
                  std::string name = "");

    // --- insertion point --------------------------------------------

    /** Direct subsequent emits to (fn, blk). */
    void setInsertPoint(FunctionId fn, BlockId blk);

    // --- instruction emission (at the insertion point) ---------------

    /** dest = op(src1, src2); returns the freshly created dest value. */
    ValueId emitRRR(isa::Op op, ValueId src1, ValueId src2,
                    std::string dest_name = "");

    /** Write into an existing live range: dest = op(src1, src2). */
    void emitRRRTo(ValueId dest, isa::Op op, ValueId src1, ValueId src2);

    /** dest = op(src, imm); returns the freshly created dest value. */
    ValueId emitRRI(isa::Op op, ValueId src, std::int64_t imm,
                    std::string dest_name = "");

    /** Write into an existing live range: dest = op(src, imm). */
    void emitRRITo(ValueId dest, isa::Op op, ValueId src, std::int64_t imm);

    /** dest = constant (Lda-style materialization). */
    ValueId emitConst(isa::RegClass cls, std::int64_t imm,
                      std::string dest_name = "");

    /** Load through an address stream; returns the loaded value. */
    ValueId emitLoad(isa::Op op, AddrStreamId stream, ValueId base,
                     std::string dest_name = "");

    /** Reload into an existing live range. */
    void emitLoadTo(ValueId dest, isa::Op op, AddrStreamId stream,
                    ValueId base);

    /** Store `data` through an address stream. */
    void emitStore(isa::Op op, ValueId data, AddrStreamId stream,
                   ValueId base);

    /** Conditional branch on `cond` resolved by `model`. */
    void emitBranch(isa::Op op, ValueId cond, BranchModelId model);

    /** Unconditional branch terminator. */
    void emitBr();

    /** Indirect jump terminator (successors chosen by succWeights). */
    void emitJmp(ValueId target);

    /** Call terminator. */
    void emitJsr(FunctionId callee);

    /** Return terminator. */
    void emitRet();

    void emitNop();

    /** Append a raw instruction (escape hatch for tests). */
    void emitRaw(const Instr &in);

    // --- edges --------------------------------------------------------

    /** Append `to` to the successor list of (fn, from). */
    void edge(FunctionId fn, BlockId from, BlockId to);

    /** Set indirect-jump selection weights for (fn, blk). */
    void succWeights(FunctionId fn, BlockId blk, std::vector<double> w);

    // --- finish -------------------------------------------------------

    /** Validate, assign PCs, and return the finished program. */
    Program build();

    /** Access the program under construction (tests only). */
    Program &raw() { return prog_; }

  private:
    BasicBlock &cursor();
    ValueId makeValue(isa::RegClass cls, std::string name, bool global,
                      bool live_in);

    Program prog_;
    FunctionId curFn_ = kNoFunction;
    BlockId curBlk_ = 0;
    bool built_ = false;
};

} // namespace mca::prog

#endif // MCA_PROG_BUILDER_HH
