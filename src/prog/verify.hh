/**
 * @file
 * IR invariant checker.
 *
 * verifyIR() re-checks everything Program::finalize() asserts — but as a
 * diagnostic report instead of a panic — plus the dataflow and
 * clustering invariants the compiler passes are supposed to preserve:
 *
 *  - structural CFG consistency (block ids, successor shape per
 *    terminator convention, dangling successor / stream / branch-model /
 *    callee / value references);
 *  - def-before-use: every use is reached by a definition on *all*
 *    paths from the entry (live-in and global-candidate values count as
 *    externally defined);
 *  - live-range sanity: a non-global value belongs to exactly one
 *    function;
 *  - post-partition legality (VerifyOptions::clusterOf set): the
 *    assignment covers the value table, stays inside [-1, numClusters),
 *    and never assigns a global candidate to a cluster;
 *  - post-regalloc legality (VerifyOptions::regOf set): every referenced
 *    value is colored, onto its own register class, global candidates
 *    onto global registers, and — when a cluster assignment and register
 *    map are also given — local values onto registers homed on their
 *    assigned cluster (a cross-cluster local-register read would
 *    silently defeat the paper's partitioning).
 *
 * The checker never mutates the program and never panics on corrupt
 * input; it accumulates human-readable findings so tests (and
 * `--verify-ir`) can point at the offending function/block/instruction.
 */

#ifndef MCA_PROG_VERIFY_HH
#define MCA_PROG_VERIFY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/registers.hh"
#include "prog/cfg.hh"

namespace mca::prog
{

/** Which invariant family a finding belongs to. */
enum class VerifyErrorKind
{
    Structure,    ///< CFG shape / dangling references
    Locality,     ///< live range crosses functions
    DefBeforeUse, ///< use not reached by a definition on all paths
    Partition,    ///< cluster-assignment legality
    Allocation,   ///< register-class / register-cluster legality
};

/** One invariant violation: where it is and what is wrong. */
struct VerifyError
{
    VerifyErrorKind kind = VerifyErrorKind::Structure;
    /** Location, e.g. "fn 'main' bb3 inst 2" or "value 'x'". */
    std::string where;
    std::string message;
};

struct VerifyResult
{
    std::vector<VerifyError> errors;

    bool ok() const { return errors.empty(); }

    /** All findings, one "where: message" line each. */
    std::string str() const;
};

/**
 * Optional post-pass state to check along with the program itself.
 * Pointers are non-owning and may be null (the corresponding checks are
 * skipped); they must outlive the verifyIR() call.
 */
struct VerifyOptions
{
    /**
     * Check that every use is reached by a definition on all paths.
     * Benchmark programs satisfy this; the random fuzzer's programs
     * intentionally do not (the trace interpreter zero-fills unwritten
     * live ranges), so the pass manager downgrades this check when the
     * *input* program already violates it.
     */
    bool checkDefBeforeUse = true;
    /** Partitioner output: per-value cluster (-1 = unassigned). */
    const std::vector<std::int8_t> *clusterOf = nullptr;
    /** Cluster count the assignment targets (with clusterOf). */
    unsigned numClusters = 1;
    /** Allocator output: per-value register. */
    const std::vector<isa::RegId> *regOf = nullptr;
    /** Register map the binary runs under (with regOf). */
    const isa::RegisterMap *regMap = nullptr;
};

/** Check every invariant; never throws, never mutates `prog`. */
VerifyResult verifyIR(const Program &prog,
                      const VerifyOptions &options = {});

} // namespace mca::prog

#endif // MCA_PROG_VERIFY_HH
