#include "bpred/predictors.hh"

#include "support/panic.hh"

namespace mca::bpred
{

namespace
{

/** Branch PCs are 4-byte aligned; drop the low bits before indexing. */
std::uint64_t
pcBits(Addr pc)
{
    return pc >> 2;
}

} // namespace

// --- Bimodal ----------------------------------------------------------

BimodalPredictor::BimodalPredictor(unsigned index_bits)
    : indexBits_(index_bits),
      table_(std::size_t{1} << index_bits, SatCounter(2, 1))
{
    MCA_ASSERT(index_bits >= 1 && index_bits <= 24, "bad bimodal size");
}

std::uint64_t
BimodalPredictor::index(Addr pc) const
{
    return pcBits(pc) & ((std::uint64_t{1} << indexBits_) - 1);
}

bool
BimodalPredictor::lookup(Addr pc) const
{
    return table_[index(pc)].predictTaken();
}

void
BimodalPredictor::train(Addr pc, bool taken)
{
    table_[index(pc)].train(taken);
}

bool
BimodalPredictor::predict(Addr pc)
{
    return lookup(pc);
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    record(lookup(pc) == taken);
    train(pc, taken);
}

// --- Gshare -----------------------------------------------------------

GsharePredictor::GsharePredictor(unsigned history_bits,
                                 unsigned index_bits,
                                 bool speculative_history)
    : historyBits_(history_bits), indexBits_(index_bits),
      speculativeHistory_(speculative_history),
      table_(std::size_t{1} << index_bits, SatCounter(2, 1))
{
    MCA_ASSERT(history_bits >= 1 && history_bits <= 24, "bad history size");
    MCA_ASSERT(index_bits >= history_bits, "index must cover history");
}

std::uint64_t
GsharePredictor::index(Addr pc) const
{
    return indexWith(pc, history_);
}

std::uint64_t
GsharePredictor::indexWith(Addr pc, std::uint64_t history) const
{
    const std::uint64_t mask = (std::uint64_t{1} << indexBits_) - 1;
    return (pcBits(pc) ^ history) & mask;
}

bool
GsharePredictor::lookup(Addr pc) const
{
    return table_[index(pc)].predictTaken();
}

void
GsharePredictor::train(Addr pc, bool taken)
{
    table_[index(pc)].train(taken);
}

void
GsharePredictor::pushHistory(bool taken)
{
    const std::uint64_t mask = (std::uint64_t{1} << historyBits_) - 1;
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask;
}

void
GsharePredictor::fixLastHistoryBit(bool taken)
{
    history_ = (history_ & ~std::uint64_t{1}) | (taken ? 1 : 0);
}

bool
GsharePredictor::predict(Addr pc)
{
    const bool dir = lookup(pc);
    if (speculativeHistory_) {
        inflight_.emplace_back(pc, history_);
        if (inflight_.size() > 64)
            inflight_.pop_front(); // squashed branches age out
        pushHistory(dir);
    }
    return dir;
}

bool
GsharePredictor::resolveAndTrain(Addr pc, bool taken)
{
    // Train the entry the prediction actually read: the oldest
    // in-flight snapshot for this pc.
    std::uint64_t hist = history_;
    for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
        if (it->first == pc) {
            hist = it->second;
            inflight_.erase(it);
            break;
        }
    }
    const auto idx = indexWith(pc, hist);
    const bool was_correct = table_[idx].predictTaken() == taken;
    table_[idx].train(taken);
    return was_correct;
}

void
GsharePredictor::update(Addr pc, bool taken)
{
    if (speculativeHistory_) {
        record(resolveAndTrain(pc, taken));
        return;
    }
    record(lookup(pc) == taken);
    train(pc, taken);
    pushHistory(taken);
}

void
GsharePredictor::squashRepair(bool taken)
{
    // Fetch stalls behind a misprediction, so the youngest history bit
    // is this branch's wrong speculative push: fix it.
    if (speculativeHistory_)
        fixLastHistoryBit(taken);
}

// --- McFarling combining -----------------------------------------------

McFarlingPredictor::McFarlingPredictor(unsigned bimodal_index_bits,
                                       unsigned history_bits,
                                       unsigned gshare_index_bits,
                                       unsigned chooser_index_bits,
                                       bool speculative_history)
    : bimodal_(bimodal_index_bits),
      gshare_(history_bits, gshare_index_bits, speculative_history),
      chooserIndexBits_(chooser_index_bits),
      chooser_(std::size_t{1} << chooser_index_bits, SatCounter(2, 1))
{
}

void
McFarlingPredictor::squashRepair(bool taken)
{
    gshare_.squashRepair(taken);
}

std::uint64_t
McFarlingPredictor::chooserIndex(Addr pc) const
{
    return pcBits(pc) & ((std::uint64_t{1} << chooserIndexBits_) - 1);
}

bool
McFarlingPredictor::predict(Addr pc)
{
    const bool use_gshare = chooser_[chooserIndex(pc)].predictTaken();
    const bool gsh = gshare_.predict(pc); // pushes speculative history
    const bool bim = bimodal_.lookup(pc);
    return use_gshare ? gsh : bim;
}

void
McFarlingPredictor::update(Addr pc, bool taken)
{
    const bool bim_correct = bimodal_.lookup(pc) == taken;
    bool gsh_correct;
    if (gshare_.speculativeHistory()) {
        // Judge gshare against the snapshot its prediction used.
        gsh_correct = gshare_.resolveAndTrain(pc, taken);
    } else {
        gsh_correct = gshare_.lookup(pc) == taken;
        gshare_.train(pc, taken);
        gshare_.pushHistory(taken);
    }
    const bool use_gshare = chooser_[chooserIndex(pc)].predictTaken();
    record((use_gshare ? gsh_correct : bim_correct));

    // The chooser only learns when the components disagree.
    if (bim_correct != gsh_correct)
        chooser_[chooserIndex(pc)].train(gsh_correct);

    bimodal_.train(pc, taken);
}

// --- checkpointing ----------------------------------------------------

namespace
{

void
saveTable(ckpt::Writer &w, const std::vector<SatCounter> &table)
{
    w.u64(table.size());
    for (const SatCounter &c : table)
        w.u8(c.value());
}

void
loadTable(ckpt::Reader &r, std::vector<SatCounter> &table)
{
    const std::uint64_t n = r.u64();
    MCA_ASSERT(n == table.size(),
               "predictor table size mismatch on restore");
    for (SatCounter &c : table)
        c.setValue(r.u8());
}

} // namespace

void
BimodalPredictor::saveState(ckpt::Writer &w) const
{
    Predictor::saveState(w);
    saveTable(w, table_);
}

void
BimodalPredictor::loadState(ckpt::Reader &r)
{
    Predictor::loadState(r);
    loadTable(r, table_);
}

void
GsharePredictor::saveState(ckpt::Writer &w) const
{
    Predictor::saveState(w);
    saveTable(w, table_);
    w.u64(history_);
    w.u64(inflight_.size());
    for (const auto &[pc, hist] : inflight_) {
        w.u64(pc);
        w.u64(hist);
    }
}

void
GsharePredictor::loadState(ckpt::Reader &r)
{
    Predictor::loadState(r);
    loadTable(r, table_);
    history_ = r.u64();
    inflight_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr pc = r.u64();
        const std::uint64_t hist = r.u64();
        inflight_.emplace_back(pc, hist);
    }
}

void
McFarlingPredictor::saveState(ckpt::Writer &w) const
{
    Predictor::saveState(w);
    bimodal_.saveState(w);
    gshare_.saveState(w);
    saveTable(w, chooser_);
}

void
McFarlingPredictor::loadState(ckpt::Reader &r)
{
    Predictor::loadState(r);
    bimodal_.loadState(r);
    gshare_.loadState(r);
    loadTable(r, chooser_);
}

} // namespace mca::bpred
