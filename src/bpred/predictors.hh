/**
 * @file
 * Branch predictors: bimodal, gshare, and the McFarling combining scheme.
 *
 * The paper's processors use McFarling's combining predictor (DEC WRL
 * TN-36): a bimodal (per-PC 2-bit counter) predictor, a global-history
 * predictor (gshare here), and a chooser table of 2-bit counters that
 * learns which component to trust per branch. Matching the paper's
 * footnote 2, predictions are made when a branch is inserted into the
 * dispatch queue while table (and history) updates happen when the branch
 * executes — so the caller invokes predict() and update() at those two
 * distinct times and in-flight branches may predict from stale state.
 */

#ifndef MCA_BPRED_PREDICTORS_HH
#define MCA_BPRED_PREDICTORS_HH

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "ckpt/io.hh"
#include "support/sat_counter.hh"
#include "support/types.hh"

namespace mca::bpred
{

/** Common interface so the processor can swap predictors. */
class Predictor : public ckpt::Checkpointable
{
  public:
    ~Predictor() override = default;

    /** Predict the direction of the conditional branch at `pc`. */
    virtual bool predict(Addr pc) = 0;

    /** Train with the resolved direction of the branch at `pc`. */
    virtual void update(Addr pc, bool taken) = 0;

    /**
     * Repair speculative state after a resolved misprediction. The
     * caller (the fetch engine) invokes this only for mispredicted
     * branches, after update(); since fetch stalls behind a
     * misprediction, no younger prediction is in flight and the repair
     * is exact. Default: nothing to repair.
     */
    virtual void squashRepair(bool /*taken*/) {}

    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t correct() const { return correct_; }

    /** Base implementation covers the accuracy accumulators; concrete
     *  predictors chain it and add their tables. */
    void
    saveState(ckpt::Writer &w) const override
    {
        w.u64(predictions_);
        w.u64(correct_);
    }

    void
    loadState(ckpt::Reader &r) override
    {
        predictions_ = r.u64();
        correct_ = r.u64();
    }

    double
    accuracy() const
    {
        return predictions_ == 0
                   ? 0.0
                   : static_cast<double>(correct_) /
                         static_cast<double>(predictions_);
    }

  protected:
    void
    record(bool was_correct)
    {
        ++predictions_;
        if (was_correct)
            ++correct_;
    }

    std::uint64_t predictions_ = 0;
    std::uint64_t correct_ = 0;
};

/** Per-PC table of 2-bit counters. */
class BimodalPredictor : public Predictor
{
  public:
    explicit BimodalPredictor(unsigned index_bits = 11);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;

    /** Direction the table currently predicts, without stats effects. */
    bool lookup(Addr pc) const;
    /** Train only (used as a component of the combining predictor). */
    void train(Addr pc, bool taken);

    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

  private:
    std::uint64_t index(Addr pc) const;

    unsigned indexBits_;
    std::vector<SatCounter> table_;
};

/** Global-history predictor: history XOR pc indexes a counter table. */
class GsharePredictor : public Predictor
{
  public:
    /**
     * @param speculative_history  Push the *predicted* direction into
     *     the history at predict time (repaired on misprediction)
     *     instead of waiting for execution. The paper's footnote 2
     *     describes update-at-execute; speculative history is the
     *     conventional fix for the staleness it causes.
     */
    GsharePredictor(unsigned history_bits = 12, unsigned index_bits = 12,
                    bool speculative_history = false);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void squashRepair(bool taken) override;

    bool lookup(Addr pc) const;
    void train(Addr pc, bool taken);
    /**
     * Resolve one in-flight prediction against its predict-time
     * history snapshot, train that entry, and report whether the
     * component predicted correctly (speculative mode; used by the
     * combining predictor's chooser).
     */
    bool resolveAndTrain(Addr pc, bool taken);
    /** Shift the resolved direction into the global history. */
    void pushHistory(bool taken);
    /** Replace the most recent history bit (misprediction repair). */
    void fixLastHistoryBit(bool taken);
    std::uint64_t history() const { return history_; }
    bool speculativeHistory() const { return speculativeHistory_; }

    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

  private:
    std::uint64_t index(Addr pc) const;
    std::uint64_t indexWith(Addr pc, std::uint64_t history) const;

    unsigned historyBits_;
    unsigned indexBits_;
    bool speculativeHistory_;
    std::uint64_t history_ = 0;
    std::vector<SatCounter> table_;
    /**
     * Predict-time history snapshots for in-flight branches
     * (speculative mode): update() must train the entry the prediction
     * actually read. Bounded; stale entries (squashed branches) age
     * out.
     */
    std::deque<std::pair<Addr, std::uint64_t>> inflight_;
};

/**
 * McFarling combining predictor: bimodal + gshare + per-PC chooser.
 *
 * The chooser counter moves toward the component that was correct when
 * exactly one of the two was correct.
 */
class McFarlingPredictor : public Predictor
{
  public:
    McFarlingPredictor(unsigned bimodal_index_bits = 11,
                       unsigned history_bits = 12,
                       unsigned gshare_index_bits = 12,
                       unsigned chooser_index_bits = 12,
                       bool speculative_history = false);

    bool predict(Addr pc) override;
    void update(Addr pc, bool taken) override;
    void squashRepair(bool taken) override;

    const BimodalPredictor &bimodal() const { return bimodal_; }
    const GsharePredictor &gshare() const { return gshare_; }

    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

  private:
    std::uint64_t chooserIndex(Addr pc) const;

    BimodalPredictor bimodal_;
    GsharePredictor gshare_;
    unsigned chooserIndexBits_;
    std::vector<SatCounter> chooser_;
};

/** Degenerate predictor for experiments: always predicts `direction`. */
class StaticPredictor : public Predictor
{
  public:
    explicit StaticPredictor(bool direction) : direction_(direction) {}

    bool
    predict(Addr) override
    {
        return direction_;
    }

    void
    update(Addr, bool taken) override
    {
        record(taken == direction_);
    }

  private:
    bool direction_;
};

} // namespace mca::bpred

#endif // MCA_BPRED_PREDICTORS_HH
