/**
 * @file
 * mcasim — the command-line driver for the multicluster simulator.
 *
 * Covers the full workflow from one binary: generate or load a
 * workload, compile it with any scheduler, save/replay trace files,
 * pick a machine, override the major configuration knobs, and dump
 * statistics or per-instruction timelines.
 *
 *   mcasim --benchmark compress --machine dual8 --scheduler local
 *   mcasim --benchmark ora --save-trace ora.mct
 *   mcasim --load-trace ora.mct --machine single8 --dump-stats
 *   mcasim --random-seed 7 --machine dual8 --timeline 40
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/snapshot.hh"
#include "compiler/pass.hh"
#include "compiler/pipeline.hh"
#include "core/processor.hh"
#include "exec/trace.hh"
#include "exec/trace_io.hh"
#include "obs/cycle_stack.hh"
#include "obs/perfetto.hh"
#include "obs/sampler.hh"
#include "obs/snapshot.hh"
#include "prof/prof.hh"
#include "runner/jobspec.hh"
#include "sample/driver.hh"
#include "sample/spec.hh"
#include "support/log.hh"
#include "support/panic.hh"
#include "workloads/workloads.hh"

#ifndef MCA_VERSION_STRING
#define MCA_VERSION_STRING "unknown"
#endif

namespace
{

using namespace mca;

struct Options
{
    std::string benchmark;
    std::optional<std::uint64_t> randomSeed;
    std::string machine = "dual8";
    std::string scheduler = "local";
    double scale = 0.2;
    std::uint64_t maxInsts = 300'000;
    std::uint64_t traceSeed = 42;
    unsigned threshold = 4;
    unsigned unroll = 1;
    unsigned clusters = 0; // 0 = implied by machine
    bool machineSet = false; // --machine given explicitly
    std::optional<unsigned> dqEntries;
    std::optional<unsigned> otbEntries;
    std::optional<unsigned> rtbEntries;
    std::optional<unsigned> mshrEntries;
    // Memory hierarchy (defaults = paper mode; docs/memory.md).
    std::optional<unsigned> icacheKb;
    std::optional<unsigned> dcacheKb;
    std::optional<unsigned> l2Kb;
    std::optional<unsigned> l2Lat;
    std::optional<unsigned> memLat;
    std::optional<unsigned> fillPorts;
    std::string queueMode;
    std::string predictor;
    bool specHistory = false;
    bool reserveOldest = false;
    bool paranoid = false;
    std::string issueEngine;
    bool noIdleSkip = false;
    std::string saveTrace;
    std::string loadTrace;
    bool dumpStats = false;
    bool jsonStats = false;
    bool dumpBinary = false;
    bool verifyIr = false;
    bool passStats = false;
    std::vector<std::string> dumpAfter;
    unsigned timeline = 0; // print the first N instructions' events
    bool quiet = false;

    // Checkpoint/restore + sampling (docs/sampling.md).
    std::string sampleSpec; // --sample plan; empty = full detailed run
    std::string ckptOut;    // write one snapshot here
    Cycle ckptAt = 0;       // cycle to take it at (0 = end of run)
    std::string ckptIn;     // restore this snapshot before running
    Cycle ckptEvery = 0;    // periodic snapshot cadence (0 = off)
    std::string ckptDir = "."; // directory for periodic snapshots

    // Observability (all off by default: the plain path is untouched).
    bool cycleStacks = false;
    Cycle intervalStats = 0; // interval length; 0 = no sampling
    std::string statsOut;    // interval rows (.csv => CSV, else JSONL)
    std::string traceOut;    // Chrome trace-event JSON
    unsigned traceInsts = 2000; // slice cap for --trace-out

    // Host-side self-profiling (docs/profiling.md).
    bool prof = false;       // record host-time regions
    std::string profOut;     // write the profile JSON here
    bool profHw = false;     // sample perf_event hardware counters
};

void
usage()
{
    std::cout <<
        "mcasim — multicluster architecture simulator\n\n"
        "workload (choose one):\n"
        "  --benchmark NAME     compress|doduc|gcc1|ora|su2cor|tomcatv\n"
        "  --random-seed N      random fuzzer program\n"
        "  --load-trace FILE    replay a saved trace file\n\n"
        "compilation:\n"
        "  --scheduler KIND     native|local|roundrobin|multilevel "
        "[local]\n"
        "  --partitioner KIND   local|roundrobin|multilevel — alias of\n"
        "                       --scheduler restricted to the clustered\n"
        "                       partitioners (docs/compiler.md)\n"
        "  --threshold N        local-scheduler imbalance threshold [4]\n"
        "  --unroll N           unroll counted self-loops [1]\n"
        "  --scale X            workload scale [0.2]\n"
        "  --verify-ir          check IR invariants between passes\n"
        "  --dump-after LIST    print the IR after these passes\n"
        "                       (comma-separated names or 'all')\n"
        "  --pass-stats         per-pass wall clock + IR deltas\n"
        "  --list-passes        print the pass registry and exit\n\n"
        "machine:\n"
        "  --machine NAME       single8|dual8|single4|dual4|quad8|octa8\n"
        "                       [dual8]\n"
        "  --clusters N         N-cluster split of the 8-way machine\n"
        "                       (1|2|4|8, = multiCluster8(N)); must agree\n"
        "                       with --machine when both are given\n"
        "  --dq N               dispatch-queue entries per cluster\n"
        "  --otb N --rtb N      transfer-buffer entries per cluster\n"
        "  --mshr N             explicit MSHR entries (0 = inverted)\n"
        "  --queue-mode KIND    window|rs (hold entries to retire/issue)\n"
        "  --predictor KIND     mcfarling|gshare|bimodal|taken|nottaken\n"
        "  --spec-history       speculative global history\n"
        "  --reserve-oldest     reserve a buffer entry for the oldest\n"
        "  --issue-engine KIND  scan|event issue scheduler [event]\n"
        "  --no-idle-skip       disable the idle-cycle fast-forward\n"
        "  --paranoid           check core invariants every cycle (slow)\n\n"
        "memory hierarchy (docs/memory.md; defaults = paper mode):\n"
        "  --icache-kb N        L1 instruction-cache size in KB [64]\n"
        "  --dcache-kb N        L1 data-cache size in KB [64]\n"
        "  --l2-kb N            shared L2 size in KB (0 = no L2) [0]\n"
        "  --l2-lat N           L2 hit latency in cycles [6]\n"
        "  --mem-lat N          memory backside latency in cycles [16]\n"
        "  --fill-ports N       fills/cycle per level (0 = unlimited) [0]\n\n"
        "run control:\n"
        "  --max-insts N        trace length cap [300000]\n"
        "  --trace-seed N       trace interpreter seed [42]\n"
        "  --save-trace FILE    write the trace file and exit\n"
        "  --dump-stats         dump the full statistics registry\n"
        "  --json               dump statistics as JSON\n"
        "  --dump-binary        print the compiled binary's disassembly\n"
        "  --timeline N         print events for the first N instructions\n"
        "  --quiet              only the one-line summary\n\n"
        "checkpoint & sampling (docs/sampling.md):\n"
        "  --sample SPEC        sampled run: mode:period=N,detail=N,\n"
        "                       warmup=N[,offset=N][,jobs=N]; mode is\n"
        "                       systematic or periodic\n"
        "  --ckpt-out FILE      write a snapshot (at --ckpt-at, or at\n"
        "                       the end of the run)\n"
        "  --ckpt-at N          cycle to take the --ckpt-out snapshot\n"
        "  --ckpt-in FILE       restore a snapshot, then run to the end\n"
        "  --ckpt-every N       write a snapshot every N cycles\n"
        "  --ckpt-dir DIR       directory for --ckpt-every files [.]\n\n"
        "observability (docs/observability.md):\n"
        "  --cycle-stacks       per-cause retire-slot stall attribution\n"
        "  --interval-stats N   close a time-series interval every N cycles\n"
        "  --stats-out FILE     interval rows (JSONL; *.csv writes CSV)\n"
        "  --trace-out FILE     Chrome trace-event JSON (Perfetto)\n"
        "  --trace-insts N      instruction slices in the trace [2000]\n\n"
        "host profiling (docs/profiling.md):\n"
        "  --prof               profile host time by simulator region\n"
        "  --prof-out FILE      write the profile as JSON (implies --prof;\n"
        "                       render with scripts/prof_report.py)\n"
        "  --prof-hw            also sample hardware counters per region\n"
        "                       (perf_event_open; falls back to time-only)\n"
        "  --log-level LVL      debug|info|warn|error|off [info; or env\n"
        "                       MCA_LOG_LEVEL]\n\n"
        "introspection:\n"
        "  --version            print the version string and exit\n"
        "  --list-benchmarks    print the benchmark names, one per line\n";
}

/**
 * Reject an unknown value for an enumerated flag at parse time, before
 * any compilation or configuration work, with the valid choices spelled
 * out (scripts should not have to parse --help to recover them).
 */
void
checkChoice(const std::string &value,
            const std::vector<std::string> &valid, const char *flag)
{
    if (std::find(valid.begin(), valid.end(), value) != valid.end())
        return;
    std::string choices;
    for (const auto &c : valid)
        choices += (choices.empty() ? "" : ", ") + c;
    MCA_FATAL("unknown value '", value, "' for ", flag,
              " (valid: ", choices, ")");
}

Options
parse(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto need = [&](const char *what) -> std::string {
            if (i + 1 >= args.size())
                MCA_FATAL("missing value for ", what);
            return args[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--version") {
            std::cout << "mcasim " << MCA_VERSION_STRING << "\n";
            std::exit(0);
        } else if (a == "--list-benchmarks") {
            for (const auto &name : runner::validBenchmarks())
                std::cout << name << "\n";
            std::exit(0);
        } else if (a == "--benchmark") {
            opt.benchmark = need("--benchmark");
            checkChoice(opt.benchmark, runner::validBenchmarks(),
                        "--benchmark");
        } else if (a == "--random-seed") {
            opt.randomSeed = std::strtoull(
                need("--random-seed").c_str(), nullptr, 10);
        } else if (a == "--machine") {
            opt.machine = need("--machine");
            checkChoice(opt.machine, runner::validMachines(),
                        "--machine");
            opt.machineSet = true;
        } else if (a == "--scheduler") {
            opt.scheduler = need("--scheduler");
            checkChoice(opt.scheduler, runner::validSchedulers(),
                        "--scheduler");
        } else if (a == "--partitioner") {
            opt.scheduler = need("--partitioner");
            checkChoice(opt.scheduler, compiler::partitionerNames(),
                        "--partitioner");
        } else if (a == "--clusters") {
            const long n = std::atol(need("--clusters").c_str());
            // Parse-time guard for the partitioner's int8_t assignment
            // storage; the machine factory narrows further to 1|2|4|8.
            if (n <= 0 ||
                n > static_cast<long>(
                        compiler::ClusterAssignment::kMaxClusters))
                MCA_FATAL("--clusters: cluster count ", n,
                          " out of range (accepted: 1, 2, 4, or 8)");
            opt.clusters = static_cast<unsigned>(n);
        } else if (a == "--scale") {
            opt.scale = std::atof(need("--scale").c_str());
        } else if (a == "--max-insts") {
            opt.maxInsts = std::strtoull(need("--max-insts").c_str(),
                                         nullptr, 10);
        } else if (a == "--trace-seed") {
            opt.traceSeed = std::strtoull(need("--trace-seed").c_str(),
                                          nullptr, 10);
        } else if (a == "--threshold") {
            opt.threshold = static_cast<unsigned>(
                std::atoi(need("--threshold").c_str()));
        } else if (a == "--unroll") {
            opt.unroll = static_cast<unsigned>(
                std::atoi(need("--unroll").c_str()));
        } else if (a == "--dq") {
            opt.dqEntries = static_cast<unsigned>(
                std::atoi(need("--dq").c_str()));
        } else if (a == "--otb") {
            opt.otbEntries = static_cast<unsigned>(
                std::atoi(need("--otb").c_str()));
        } else if (a == "--rtb") {
            opt.rtbEntries = static_cast<unsigned>(
                std::atoi(need("--rtb").c_str()));
        } else if (a == "--queue-mode") {
            opt.queueMode = need("--queue-mode");
            checkChoice(opt.queueMode, {"window", "rs"}, "--queue-mode");
        } else if (a == "--mshr") {
            opt.mshrEntries = static_cast<unsigned>(
                std::atoi(need("--mshr").c_str()));
        } else if (a == "--icache-kb") {
            opt.icacheKb = static_cast<unsigned>(
                std::atoi(need("--icache-kb").c_str()));
        } else if (a == "--dcache-kb") {
            opt.dcacheKb = static_cast<unsigned>(
                std::atoi(need("--dcache-kb").c_str()));
        } else if (a == "--l2-kb") {
            opt.l2Kb = static_cast<unsigned>(
                std::atoi(need("--l2-kb").c_str()));
        } else if (a == "--l2-lat") {
            opt.l2Lat = static_cast<unsigned>(
                std::atoi(need("--l2-lat").c_str()));
        } else if (a == "--mem-lat") {
            opt.memLat = static_cast<unsigned>(
                std::atoi(need("--mem-lat").c_str()));
        } else if (a == "--fill-ports") {
            opt.fillPorts = static_cast<unsigned>(
                std::atoi(need("--fill-ports").c_str()));
        } else if (a == "--predictor") {
            opt.predictor = need("--predictor");
            checkChoice(opt.predictor, runner::validPredictors(),
                        "--predictor");
        } else if (a == "--spec-history") {
            opt.specHistory = true;
        } else if (a == "--reserve-oldest") {
            opt.reserveOldest = true;
        } else if (a == "--paranoid") {
            opt.paranoid = true;
        } else if (a == "--issue-engine") {
            opt.issueEngine = need("--issue-engine");
            checkChoice(opt.issueEngine, {"scan", "event"},
                        "--issue-engine");
        } else if (a == "--no-idle-skip") {
            opt.noIdleSkip = true;
        } else if (a == "--save-trace") {
            opt.saveTrace = need("--save-trace");
        } else if (a == "--load-trace") {
            opt.loadTrace = need("--load-trace");
        } else if (a == "--verify-ir") {
            opt.verifyIr = true;
        } else if (a == "--pass-stats") {
            opt.passStats = true;
        } else if (a == "--list-passes") {
            for (const auto &info : compiler::allPasses())
                std::printf("%-11s %s\n",
                            std::string(info.name).c_str(),
                            std::string(info.description).c_str());
            std::exit(0);
        } else if (a == "--dump-after") {
            std::string list = need("--dump-after");
            std::size_t pos = 0;
            while (pos <= list.size()) {
                const std::size_t comma = list.find(',', pos);
                const std::string name = list.substr(
                    pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
                if (name != "all" && !compiler::isPassName(name))
                    MCA_FATAL("--dump-after: unknown pass '", name,
                              "' (see --list-passes)");
                opt.dumpAfter.push_back(name);
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
        } else if (a == "--dump-stats") {
            opt.dumpStats = true;
        } else if (a == "--json") {
            opt.jsonStats = true;
        } else if (a == "--dump-binary") {
            opt.dumpBinary = true;
        } else if (a == "--timeline") {
            opt.timeline = static_cast<unsigned>(
                std::atoi(need("--timeline").c_str()));
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else if (a == "--sample") {
            opt.sampleSpec = need("--sample");
        } else if (a == "--ckpt-out") {
            opt.ckptOut = need("--ckpt-out");
        } else if (a == "--ckpt-at") {
            opt.ckptAt = std::strtoull(need("--ckpt-at").c_str(),
                                       nullptr, 10);
        } else if (a == "--ckpt-in") {
            opt.ckptIn = need("--ckpt-in");
        } else if (a == "--ckpt-every") {
            opt.ckptEvery = std::strtoull(need("--ckpt-every").c_str(),
                                          nullptr, 10);
            if (opt.ckptEvery == 0)
                MCA_FATAL("--ckpt-every must be >= 1");
        } else if (a == "--ckpt-dir") {
            opt.ckptDir = need("--ckpt-dir");
        } else if (a == "--cycle-stacks") {
            opt.cycleStacks = true;
        } else if (a == "--interval-stats") {
            opt.intervalStats = std::strtoull(
                need("--interval-stats").c_str(), nullptr, 10);
            if (opt.intervalStats == 0)
                MCA_FATAL("--interval-stats must be >= 1");
        } else if (a == "--stats-out") {
            opt.statsOut = need("--stats-out");
        } else if (a == "--trace-out") {
            opt.traceOut = need("--trace-out");
        } else if (a == "--trace-insts") {
            opt.traceInsts = static_cast<unsigned>(
                std::atoi(need("--trace-insts").c_str()));
        } else if (a == "--prof") {
            opt.prof = true;
        } else if (a == "--prof-out") {
            opt.profOut = need("--prof-out");
            opt.prof = true;
        } else if (a == "--prof-hw") {
            opt.profHw = true;
            opt.prof = true;
        } else if (a == "--log-level") {
            const std::string text = need("--log-level");
            log::Level level;
            if (!log::parseLevel(text, level))
                MCA_FATAL("unknown log level '", text,
                          "' (valid: debug, info, warn, error, off)");
            log::setThreshold(level);
        } else {
            usage();
            MCA_FATAL("unknown argument: ", a);
        }
    }
    if (opt.clusters > 0 && !opt.machineSet)
        opt.machine = "multi8x" + std::to_string(opt.clusters);
    return opt;
}

core::ProcessorConfig
machineConfig(const Options &opt, unsigned *clusters)
{
    static const std::map<std::string,
                          core::ProcessorConfig (*)()>
        kMachines = {
            {"single8", &core::ProcessorConfig::singleCluster8},
            {"dual8", &core::ProcessorConfig::dualCluster8},
            {"single4", &core::ProcessorConfig::singleCluster4},
            {"dual4", &core::ProcessorConfig::dualCluster4},
        };
    core::ProcessorConfig cfg;
    if (opt.clusters > 0 && !opt.machineSet) {
        // --clusters alone selects the N-cluster 8-way machine.
        try {
            cfg = core::ProcessorConfig::multiCluster8(opt.clusters,
                                                       "--clusters");
        } catch (const std::exception &e) {
            MCA_FATAL(e.what());
        }
    } else if (opt.machine == "quad8") {
        cfg = core::ProcessorConfig::multiCluster8(4);
    } else if (opt.machine == "octa8") {
        cfg = core::ProcessorConfig::multiCluster8(8);
    } else {
        auto it = kMachines.find(opt.machine);
        if (it == kMachines.end())
            MCA_FATAL("unknown machine '", opt.machine, "'");
        cfg = it->second();
    }
    // Cross-check: the binary is partitioned for the machine's cluster
    // count, so an explicit --clusters must agree with --machine.
    if (opt.clusters > 0 && opt.machineSet &&
        cfg.numClusters != opt.clusters)
        MCA_FATAL("--clusters ", opt.clusters, " disagrees with --machine ",
                  opt.machine, " (", cfg.numClusters,
                  " clusters); the compiled binary is partitioned for "
                  "the machine's cluster count");
    *clusters = cfg.numClusters;
    if (opt.dqEntries)
        cfg.dispatchQueueEntries = *opt.dqEntries;
    if (opt.otbEntries)
        cfg.operandBufferEntries = *opt.otbEntries;
    if (opt.rtbEntries)
        cfg.resultBufferEntries = *opt.rtbEntries;
    if (opt.mshrEntries)
        cfg.memory.dcache.mshrEntries = *opt.mshrEntries;
    if (opt.icacheKb)
        cfg.memory.icache.sizeBytes = *opt.icacheKb * 1024ull;
    if (opt.dcacheKb)
        cfg.memory.dcache.sizeBytes = *opt.dcacheKb * 1024ull;
    if (opt.l2Kb)
        cfg.memory.l2SizeBytes = *opt.l2Kb * 1024ull;
    if (opt.l2Lat)
        cfg.memory.l2HitLatency = *opt.l2Lat;
    if (opt.memLat)
        cfg.memory.memLatency = *opt.memLat;
    if (opt.fillPorts) {
        cfg.memory.icache.fillPorts = *opt.fillPorts;
        cfg.memory.dcache.fillPorts = *opt.fillPorts;
        cfg.memory.l2FillPorts = *opt.fillPorts;
        cfg.memory.memPorts = *opt.fillPorts;
    }
    cfg.speculativeHistory = opt.specHistory;
    cfg.reserveOldestEntry = opt.reserveOldest;
    cfg.paranoid = opt.paranoid;
    if (opt.issueEngine == "scan")
        cfg.issueEngine = core::ProcessorConfig::IssueEngine::Scan;
    else if (opt.issueEngine == "event")
        cfg.issueEngine = core::ProcessorConfig::IssueEngine::Event;
    if (opt.noIdleSkip)
        cfg.idleSkip = false;
    if (opt.queueMode == "window")
        cfg.holdQueueUntilRetire = true;
    else if (opt.queueMode == "rs")
        cfg.holdQueueUntilRetire = false;
    else if (!opt.queueMode.empty())
        MCA_FATAL("unknown queue mode '", opt.queueMode, "'");
    if (!opt.predictor.empty()) {
        using Kind = core::ProcessorConfig::PredictorKind;
        if (opt.predictor == "mcfarling")
            cfg.predictor = Kind::McFarling;
        else if (opt.predictor == "gshare")
            cfg.predictor = Kind::Gshare;
        else if (opt.predictor == "bimodal")
            cfg.predictor = Kind::Bimodal;
        else if (opt.predictor == "taken")
            cfg.predictor = Kind::StaticTaken;
        else if (opt.predictor == "nottaken")
            cfg.predictor = Kind::StaticNotTaken;
        else
            MCA_FATAL("unknown predictor '", opt.predictor, "'");
    }
    // Surface bad knob combinations (cache geometry, zero widths) as a
    // one-line parse-time error instead of a mid-run assertion.
    try {
        cfg.validate();
    } catch (const std::exception &e) {
        MCA_FATAL(e.what());
    }
    return cfg;
}

/**
 * Close out a profiled run: snapshot the merged region tree, write the
 * JSON document to --prof-out, merge a host-profile flame track into
 * the Perfetto trace (when one is being written), and log a one-line
 * digest. Call only after every instrumented scope has closed.
 */
void
finishProfile(const Options &opt, obs::PerfettoExporter *exporter,
              unsigned host_pid)
{
    const prof::Profile profile = prof::snapshot();
    if (!opt.profOut.empty()) {
        std::ofstream out(opt.profOut, std::ios::trunc);
        if (!out)
            MCA_FATAL("cannot write --prof-out file '", opt.profOut,
                      "'");
        profile.dumpJson(out);
    }
    if (exporter)
        exporter->addHostProfile(profile.root, host_pid);
    if (!opt.quiet) {
        const double coverage =
            profile.wallNs != 0
                ? 100.0 * static_cast<double>(profile.root.totalNs) /
                      static_cast<double>(profile.wallNs)
                : 0.0;
        char digest[160];
        std::snprintf(digest, sizeof digest,
                      "%.1f ms wall, %.1f%% in regions, %u thread%s, "
                      "hw counters %s",
                      static_cast<double>(profile.wallNs) / 1e6, coverage,
                      profile.threads, profile.threads == 1 ? "" : "s",
                      prof::hwRequested()
                          ? (profile.hwAvailable ? "on" : "unavailable")
                          : "off");
        MCA_LOG_INFO("prof", digest);
        if (!opt.profOut.empty())
            MCA_LOG_INFO("prof", "wrote profile to ", opt.profOut,
                         " (render with scripts/prof_report.py)");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    // Enable recording before any instrumented work so Profile::wallNs
    // spans (and the coverage check is honest about) the whole run.
    if (opt.prof) {
        if (opt.profHw)
            prof::setHwEnabled(true);
        prof::setEnabled(true);
    }

    unsigned clusters = 2;
    core::ProcessorConfig cfg = machineConfig(opt, &clusters);

    std::unique_ptr<exec::TraceSource> trace;
    std::string source_desc;
    // Kept alive for the whole run: ProgramTrace references the binary.
    std::optional<compiler::CompileOutput> compiled;

    if (!opt.loadTrace.empty()) {
        auto ft = std::make_unique<exec::FileTrace>(opt.loadTrace);
        source_desc = opt.loadTrace + " (" +
                      std::to_string(ft->count()) + " records)";
        // Reconstruct the producing binary's global registers so the
        // replay models them correctly.
        ft->applyGlobals(cfg.regMap);
        trace = std::move(ft);
    } else {
        prog::Program program = [&] {
            PROF_SCOPE("workload");
            if (opt.randomSeed) {
                workloads::RandomProgramParams rp;
                rp.seed = *opt.randomSeed;
                return workloads::makeRandomProgram(rp);
            }
            const std::string name =
                opt.benchmark.empty() ? "compress" : opt.benchmark;
            workloads::WorkloadParams wp;
            wp.scale = opt.scale;
            return workloads::benchmarkByName(name).make(wp);
        }();

        compiler::CompileOptions copt;
        try {
            copt = compiler::compileOptionsFor(opt.scheduler, clusters);
        } catch (const std::exception &e) {
            MCA_FATAL(e.what());
        }
        copt.imbalanceThreshold = opt.threshold;
        copt.unrollFactor = opt.unroll;
        if (opt.verifyIr)
            copt.verifyIr = true;
        copt.dumpAfter = opt.dumpAfter;
        try {
            PROF_SCOPE("compile");
            compiled = compiler::compile(program, copt);
        } catch (const std::exception &e) {
            MCA_FATAL(e.what());
        }
        for (const auto &[pass, text] : compiled->dumps)
            std::cout << "=== after pass '" << pass << "' ===\n"
                      << text;
        cfg.regMap = compiled->hardwareMap(clusters);
        source_desc = program.name + " / " + opt.scheduler;

        if (!opt.saveTrace.empty()) {
            exec::ProgramTrace pt(compiled->binary, opt.traceSeed,
                                  opt.maxInsts);
            const auto n = exec::writeTrace(opt.saveTrace, pt,
                                            compiled->alloc.globalRegs,
                                            opt.maxInsts);
            std::cout << "wrote " << n << " instructions to "
                      << opt.saveTrace << "\n";
            return 0;
        }
        if (opt.dumpBinary)
            std::cout << prog::dumpProgram(compiled->binary);
        trace = std::make_unique<exec::ProgramTrace>(
            compiled->binary, opt.traceSeed, opt.maxInsts);
    }

    if (!opt.sampleSpec.empty()) {
        // Sampled run: the driver replays the compiled binary itself
        // (one functional warming pass + K detailed intervals), so it
        // needs the program, not a pre-opened trace.
        if (!compiled)
            MCA_FATAL("--sample requires a compiled workload "
                      "(--benchmark or --random-seed, not --load-trace)");
        sample::SampleSpec spec;
        try {
            spec = sample::SampleSpec::parse(opt.sampleSpec);
        } catch (const std::exception &e) {
            MCA_FATAL(e.what());
        }
        sample::SampleReport rep;
        try {
            PROF_SCOPE("simulate");
            sample::SampledDriver driver(compiled->binary, cfg,
                                         opt.traceSeed, opt.maxInsts);
            rep = driver.run(spec);
        } catch (const std::exception &e) {
            MCA_FATAL(e.what());
        }
        if (!rep.allConserved)
            MCA_FATAL("cycle-stack conservation violated in a sampled "
                      "interval");
        std::cout << source_desc << " on " << opt.machine << " [sampled "
                  << spec.canonical() << "]: " << rep.totalInsts
                  << " instructions, est " << rep.estTotalCycles
                  << " cycles (cpi " << rep.cpiMean << " +/- "
                  << rep.cpiCi95 << ", " << rep.intervals.size()
                  << " intervals, " << rep.detailedInsts
                  << " detailed insts)\n";
        if (opt.jsonStats)
            rep.dumpJson(std::cout);

        // Per-window trace: one slice per measured interval placed at
        // its estimated position in the full run (start instruction x
        // mean CPI), with measured-CPI and snapshot-restore-time
        // counter tracks alongside, plus the host profile when --prof.
        if (!opt.traceOut.empty()) {
            obs::PerfettoExporter exporter;
            exporter.nameProcess(0, "sampled windows");
            for (const auto &iv : rep.intervals) {
                const Cycle ts = static_cast<Cycle>(
                    static_cast<double>(iv.startInst) * rep.cpiMean);
                exporter.addSlice("window " + std::to_string(iv.index),
                                  0, 1, ts,
                                  std::max<Cycle>(iv.cycles, 1));
                exporter.addCounterValue("measured CPI", 0, ts, iv.cpi);
                exporter.addCounterValue(
                    "restore ms", 0, ts,
                    static_cast<double>(iv.restoreHostNs) / 1e6);
            }
            // The executor's schedule as its own process: one slice
            // per warm/measure node on its assigned lane, in host
            // microseconds — the picture of window i measuring while
            // window i+1 warms (src/taskgraph/taskgraph.hh).
            exporter.nameProcess(1, "task graph");
            for (const auto &span : rep.taskSpans) {
                const std::uint64_t dur =
                    (span.endNs - span.startNs) / 1000;
                exporter.addSlice(span.name, 1,
                                  static_cast<int>(span.lane) + 1,
                                  span.startNs / 1000,
                                  std::max<std::uint64_t>(dur, 1));
            }
            if (opt.prof)
                finishProfile(opt, &exporter, 2);
            std::ofstream out(opt.traceOut, std::ios::trunc);
            if (!out)
                MCA_FATAL("cannot write --trace-out file '",
                          opt.traceOut, "'");
            exporter.write(out);
            if (!opt.quiet)
                std::cout << "wrote trace to " << opt.traceOut
                          << " (open in ui.perfetto.dev)\n";
        } else if (opt.prof) {
            finishProfile(opt, nullptr, 0);
        }
        return 0;
    }

    StatGroup stats("mcasim");
    core::Processor cpu(cfg, *trace, stats);
    core::TimelineRecorder recorder;
    if (opt.timeline > 0 || !opt.traceOut.empty())
        cpu.attachTimeline(&recorder);

    obs::CycleStack cstack;
    if (opt.cycleStacks)
        cpu.attachCycleStack(&cstack);

    if (!opt.ckptIn.empty()) {
        try {
            const auto snap = ckpt::Snapshot::loadFile(opt.ckptIn);
            ckpt::SnapshotParser parser(snap, cpu.configHash());
            cpu.loadState(parser);
        } catch (const std::exception &e) {
            MCA_FATAL("--ckpt-in '", opt.ckptIn, "': ", e.what());
        }
        if (!opt.quiet)
            std::cout << "restored " << opt.ckptIn << " (cycle "
                      << cpu.now() << ", "
                      << cpu.retiredInstructions() << " retired)\n";
    }

    auto saveSnapshot = [&](const std::string &path) {
        ckpt::SnapshotBuilder builder(cpu.configHash());
        cpu.saveState(builder);
        try {
            builder.finish().saveFile(path);
        } catch (const std::exception &e) {
            MCA_FATAL(e.what());
        }
        if (!opt.quiet)
            std::cout << "wrote checkpoint " << path << " (cycle "
                      << cpu.now() << ")\n";
    };
    auto periodicPath = [&](Cycle cycle) {
        char name[32];
        std::snprintf(name, sizeof name, "ckpt_%012llu.mck",
                      static_cast<unsigned long long>(cycle));
        return opt.ckptDir + "/" + name;
    };
    Cycle nextEvery =
        opt.ckptEvery > 0 ? cpu.now() + opt.ckptEvery : ~Cycle{0};
    // --ckpt-at 0 means "at the end of the run" (saved after the loop).
    bool ckptOutSaved = opt.ckptOut.empty() || opt.ckptAt == 0;

    // Per-cycle observation is needed only for the sampler and the
    // counter tracks; without them the run loop is exactly cpu.run()
    // (zero overhead on the default path).
    const bool per_cycle =
        opt.intervalStats > 0 || !opt.traceOut.empty();
    obs::PeriodicSampler sampler(
        opt.intervalStats > 0 ? opt.intervalStats : 1);
    obs::PerfettoExporter exporter;
    core::SimResult result;
    // One top-level region spanning the detailed run (and the
    // checkpoint saves riding on it); closed explicitly below, before
    // the profiler snapshot.
    std::optional<prof::ScopeTimer> simScope(
        std::in_place, prof::internRegion("simulate"));
    if (per_cycle) {
        // Counter tracks sample at the interval period (or a small
        // fixed stride) so long runs do not drown the trace.
        const Cycle counter_stride =
            opt.intervalStats > 0 ? opt.intervalStats : 16;
        obs::CycleObs snap;
        while (cpu.step()) {
            cpu.observe(snap);
            if (opt.intervalStats > 0)
                sampler.tick(snap);
            if (!opt.traceOut.empty() &&
                snap.cycle % counter_stride == 0)
                exporter.addCounters(snap);
            // step() never fast-forwards, so every boundary is seen.
            if (!ckptOutSaved && cpu.now() >= opt.ckptAt) {
                saveSnapshot(opt.ckptOut);
                ckptOutSaved = true;
            }
            if (cpu.now() >= nextEvery) {
                saveSnapshot(periodicPath(cpu.now()));
                nextEvery += opt.ckptEvery;
            }
        }
        sampler.finish();
        result.cycles = cpu.now();
        result.instructions = cpu.retiredInstructions();
        result.completed = true;
    } else if (opt.ckptEvery > 0 || !ckptOutSaved) {
        // Segmented run: stop at each checkpoint boundary (between
        // cycles, where saveState is legal), snapshot, continue. The
        // resumed segments are bit-identical to one uninterrupted
        // run() (tests/ckpt_test.cc), so checkpoints are free of
        // timing perturbation.
        while (true) {
            const Cycle bound =
                std::min(nextEvery, ckptOutSaved ? ~Cycle{0} : opt.ckptAt);
            result = cpu.run(bound);
            if (result.completed)
                break;
            if (!ckptOutSaved && cpu.now() >= opt.ckptAt) {
                saveSnapshot(opt.ckptOut);
                ckptOutSaved = true;
            }
            if (cpu.now() >= nextEvery) {
                saveSnapshot(periodicPath(cpu.now()));
                nextEvery += opt.ckptEvery;
            }
        }
    } else {
        result = cpu.run();
    }
    if (!opt.ckptOut.empty() && !ckptOutSaved)
        saveSnapshot(opt.ckptOut);
    // --ckpt-at 0 (or a bound past the run's end): snapshot the final
    // state, which restores as a completed machine.
    if (!opt.ckptOut.empty() && opt.ckptAt == 0)
        saveSnapshot(opt.ckptOut);
    simScope.reset();

    if (opt.cycleStacks) {
        MCA_ASSERT(cstack.conserved(),
                   "cycle-stack conservation violated: ",
                   cstack.totalSlotCycles(), " slot-cycles != ",
                   cstack.slots, " slots x ", cstack.cycles, " cycles");
        // Expose the stack through the stats registry so --dump-stats
        // and --json carry it.
        stats.counter("cstack.slots", "retire slots per cycle") +=
            cstack.slots;
        for (std::size_t i = 0; i < obs::kNumStallCauses; ++i) {
            const auto cause = static_cast<obs::StallCause>(i);
            stats.counter(std::string("cstack.") +
                              obs::stallCauseName(cause),
                          obs::stallCauseDesc(cause)) += cstack.at(cause);
        }
    }

    std::cout << source_desc << " on " << opt.machine << ": "
              << result.instructions << " instructions, "
              << result.cycles << " cycles (ipc "
              << (result.cycles ? static_cast<double>(
                                      result.instructions) /
                                      static_cast<double>(result.cycles)
                                : 0.0)
              << ")\n";

    if (opt.passStats && compiled) {
        // Expose the per-pass record through the stats registry so
        // --dump-stats and --json carry it alongside the run stats.
        compiler::exportPassStats(compiled->passStats, stats,
                                  "compile.pass");
        compiler::exportPartitionStats(compiled->partitionStats, stats,
                                       "compile.partition");
        if (!opt.quiet && compiled->partitionStats.numClusters > 1) {
            const auto &ps = compiled->partitionStats;
            std::printf("partition quality: cut %llu / %llu affinity "
                        "weight, balance %.3f, fm gain %llu "
                        "(%u clusters, %llu nodes)\n",
                        static_cast<unsigned long long>(ps.cutWeight),
                        static_cast<unsigned long long>(
                            ps.totalEdgeWeight),
                        ps.balance,
                        static_cast<unsigned long long>(ps.fmGain),
                        ps.numClusters,
                        static_cast<unsigned long long>(ps.numNodes));
        }
        if (!opt.quiet) {
            std::cout << "compiler passes:\n";
            std::printf("  %-10s %10s %8s %8s %8s %10s\n", "pass",
                        "wall(ms)", "blocks", "insts", "values",
                        "spill-ops");
            for (const auto &ps : compiled->passStats)
                std::printf(
                    "  %-10s %10.3f %8llu %8llu %8llu %10llu\n",
                    ps.pass.c_str(), ps.wallMs,
                    static_cast<unsigned long long>(ps.blocksAfter),
                    static_cast<unsigned long long>(ps.instsAfter),
                    static_cast<unsigned long long>(ps.valuesAfter),
                    static_cast<unsigned long long>(ps.spillOpsAfter));
        }
    }

    if (opt.timeline > 0) {
        for (InstSeq seq = 0; seq < opt.timeline; ++seq) {
            const auto events = recorder.forInst(seq);
            if (events.empty())
                break;
            std::cout << "inst " << seq << ":\n";
            for (const auto &ev : events)
                std::cout << "  cycle " << ev.cycle << "  cluster "
                          << ev.cluster << "  "
                          << core::timelineEventName(ev.event) << "\n";
        }
    }
    if (opt.cycleStacks && !opt.quiet) {
        std::cout << "cycle stack (" << cstack.slots << " retire slots x "
                  << cstack.cycles << " cycles):\n";
        const double total =
            static_cast<double>(cstack.totalSlotCycles());
        for (std::size_t i = 0; i < obs::kNumStallCauses; ++i) {
            const auto cause = static_cast<obs::StallCause>(i);
            if (cstack.at(cause) == 0)
                continue;
            char pct[16];
            std::snprintf(pct, sizeof pct, "%5.1f%%",
                          total == 0.0 ? 0.0
                                       : 100.0 *
                                             static_cast<double>(
                                                 cstack.at(cause)) /
                                             total);
            std::printf("  %-12s %12llu slot-cycles %s  (%s)\n",
                        obs::stallCauseName(cause),
                        static_cast<unsigned long long>(cstack.at(cause)),
                        pct, obs::stallCauseDesc(cause));
        }
    }

    if (opt.intervalStats > 0) {
        if (opt.statsOut.empty()) {
            sampler.writeJsonl(std::cout);
        } else {
            std::ofstream out(opt.statsOut, std::ios::trunc);
            if (!out)
                MCA_FATAL("cannot write --stats-out file '", opt.statsOut,
                          "'");
            const bool csv =
                opt.statsOut.size() >= 4 &&
                opt.statsOut.compare(opt.statsOut.size() - 4, 4,
                                     ".csv") == 0;
            csv ? sampler.writeCsv(out) : sampler.writeJsonl(out);
            if (!opt.quiet)
                std::cout << "wrote " << sampler.rows().size()
                          << " intervals to " << opt.statsOut << "\n";
        }
    }

    // The host profile rides in the Perfetto trace (as a flame-graph
    // process after the clusters and the memory system) when one is
    // being written, so guest cycles and host time open side by side.
    if (opt.prof)
        finishProfile(opt, opt.traceOut.empty() ? nullptr : &exporter,
                      clusters + 1);

    if (!opt.traceOut.empty()) {
        // Cap the instruction slices so long runs stay loadable; the
        // counter tracks still cover the whole run.
        core::TimelineRecorder capped;
        for (const auto &rec : recorder.records())
            if (rec.seq < opt.traceInsts)
                capped.record(rec.cycle, rec.seq, rec.cluster, rec.event);
        exporter.addTimeline(capped, clusters);
        std::ofstream out(opt.traceOut, std::ios::trunc);
        if (!out)
            MCA_FATAL("cannot write --trace-out file '", opt.traceOut,
                      "'");
        exporter.write(out);
        if (!opt.quiet)
            std::cout << "wrote trace to " << opt.traceOut
                      << " (open in ui.perfetto.dev)\n";
    }

    if (opt.dumpStats && !opt.quiet)
        stats.dump(std::cout);
    if (opt.jsonStats)
        stats.dumpJson(std::cout);
    return 0;
}
