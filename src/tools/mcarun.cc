/**
 * @file
 * mcarun — parallel experiment-campaign driver.
 *
 * Expands a parameter grid (benchmarks × machines × schedulers ×
 * thresholds × trace seeds) into independent compile-and-simulate
 * jobs, shards them across worker threads, serves repeated points from
 * an on-disk result cache, and emits JSON-lines and/or CSV results.
 *
 * Results are bit-identical at any --jobs width: each job owns all of
 * its state and results are emitted in grid order, never completion
 * order. Failed or timed-out jobs are recorded in the output (status
 * column) and never abort the campaign; the exit code is 0 as long as
 * the campaign itself ran.
 *
 *   mcarun --benchmarks all --machines single8,dual8 \
 *          --schedulers native,local --jobs 8 --out results.jsonl
 *   mcarun --table2 --scale 1.0 --jobs $(nproc) --csv table2.csv
 *   mcarun --benchmarks compress --thresholds 1,2,4,8,16,32 --csv -
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compiler/pipeline.hh"
#include "obs/cycle_stack.hh"
#include "runner/campaign.hh"
#include "runner/emit.hh"
#include "runner/table2.hh"
#include "runner/telemetry.hh"
#include "support/log.hh"
#include "support/table.hh"

#ifndef MCA_VERSION_STRING
#define MCA_VERSION_STRING "unknown"
#endif

namespace
{

using namespace mca;

struct Options
{
    runner::CampaignGrid grid;
    bool table2 = false;
    unsigned jobs = 1;
    std::string cacheDir = ".mcarun-cache";
    bool noCache = false;
    bool noCompileCache = false;
    std::string jsonOut;
    std::string csvOut;
    std::string telemetryOut;
    bool quiet = false;
    bool printTable = true;
};

void
usage()
{
    auto joined = [](const std::vector<std::string> &v) {
        std::string out;
        for (const auto &s : v)
            out += (out.empty() ? "" : "|") + s;
        return out;
    };
    std::cout <<
        "mcarun — parallel experiment-campaign driver\n\n"
        "grid axes (comma-separated lists; 'all' = every benchmark):\n"
        "  --benchmarks LIST    " + joined(runner::validBenchmarks()) +
        " [compress]\n"
        "  --machines LIST      " + joined(runner::validMachines()) +
        " [dual8]\n"
        "  --schedulers LIST    " + joined(runner::validSchedulers()) +
        " [local]\n"
        "  --partitioners LIST  " + joined(compiler::partitionerNames()) +
        "\n"
        "                       (appended to --schedulers; the scheduler\n"
        "                       axis is the partitioner axis)\n"
        "  --thresholds LIST    local-scheduler imbalance thresholds [4]\n"
        "  --trace-seeds LIST   trace interpreter seeds [42]\n"
        "  --l2-kb LIST         shared-L2 sizes in KB (0 = no L2) [0]\n"
        "  --l2-lat LIST        L2 hit latencies in cycles [6]\n"
        "  --mem-lat LIST       memory backside latencies in cycles [16]\n"
        "  --sample-periods LIST  sampled-run interval periods; 0 = full\n"
        "                       detailed run (docs/sampling.md) [0]\n\n"
        "shared job parameters:\n"
        "  --fill-ports N       fills/cycle per level (0 = unlimited) [0]\n"
        "  --scale X            workload scale [0.2]\n"
        "  --unroll N           unroll factor [1]\n"
        "  --predictor KIND     " + joined(runner::validPredictors()) +
        " [machine default]\n"
        "  --sample-detail N    measured insts per sampled interval "
        "[10000]\n"
        "  --sample-warmup N    detailed-warmup insts per interval [2000]\n"
        "  --max-insts N        trace length cap [300000]\n"
        "  --max-cycles N       cycle budget; exceeding it = timeout "
        "[100000000]\n\n"
        "campaign presets:\n"
        "  --table2             run the Table-2 experiment (3 jobs per\n"
        "                       benchmark) and print the speedup table\n\n"
        "execution:\n"
        "  --jobs N|auto        worker threads [1; auto = all hardware "
        "threads];\n"
        "                       results identical at any width\n"
        "  --cache DIR          result-cache directory [.mcarun-cache]\n"
        "  --no-cache           disable the result cache\n"
        "  --no-compile-cache   compile every job separately (default:\n"
        "                       jobs with equal workload + compile\n"
        "                       config share one compile)\n\n"
        "output:\n"
        "  --out FILE           JSON-lines results ('-' = stdout)\n"
        "  --csv FILE           CSV results ('-' = stdout)\n"
        "  --telemetry FILE     live campaign heartbeat as JSON lines:\n"
        "                       one record per finished job with done/\n"
        "                       total, ETA, aggregate sim-cycles/s, and\n"
        "                       cache-hit rates (docs/profiling.md)\n"
        "  --log-level LVL      debug|info|warn|error|off [info; or env\n"
        "                       MCA_LOG_LEVEL]\n"
        "  --no-table           skip the human-readable table\n"
        "  --quiet              no progress line\n\n"
        "introspection:\n"
        "  --version            print the version string and exit\n"
        "  --list-benchmarks    print the benchmark names, one per line\n";
}

[[noreturn]] void
die(const std::string &msg)
{
    std::cerr << "mcarun: " << msg << "\n";
    std::exit(2);
}

std::vector<std::string>
splitList(const std::string &arg)
{
    std::vector<std::string> out;
    std::stringstream ss(arg);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

std::string
joinChoices(const std::vector<std::string> &choices)
{
    std::string out;
    for (const auto &c : choices)
        out += (out.empty() ? "" : ", ") + c;
    return out;
}

/** Validate every element of a list axis against the known choices. */
void
checkChoices(const std::vector<std::string> &values,
             const std::vector<std::string> &valid, const char *axis)
{
    for (const auto &v : values)
        if (std::find(valid.begin(), valid.end(), v) == valid.end())
            die(std::string("unknown ") + axis + " '" + v +
                "' (valid: " + joinChoices(valid) + ")");
}

Options
parse(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto need = [&](const char *what) -> std::string {
            if (i + 1 >= args.size())
                die(std::string("missing value for ") + what);
            return args[++i];
        };
        auto needUnsignedList = [&](const char *what) {
            std::vector<unsigned> out;
            for (const auto &s : splitList(need(what)))
                out.push_back(
                    static_cast<unsigned>(std::strtoul(s.c_str(),
                                                       nullptr, 10)));
            return out;
        };
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--version") {
            std::cout << "mcarun " << MCA_VERSION_STRING << "\n";
            std::exit(0);
        } else if (a == "--list-benchmarks") {
            for (const auto &name : runner::validBenchmarks())
                std::cout << name << "\n";
            std::exit(0);
        } else if (a == "--benchmarks") {
            const std::string value = need("--benchmarks");
            opt.grid.benchmarks = value == "all"
                                      ? runner::validBenchmarks()
                                      : splitList(value);
        } else if (a == "--machines") {
            opt.grid.machines = splitList(need("--machines"));
        } else if (a == "--schedulers") {
            opt.grid.schedulers = splitList(need("--schedulers"));
        } else if (a == "--partitioners") {
            // Partitioners ARE schedulers (the scheduler name selects
            // the partition pass); this axis just restricts the valid
            // set to the partition-capable ones and appends.
            const auto names = splitList(need("--partitioners"));
            checkChoices(names, compiler::partitionerNames(),
                         "partitioner");
            for (const auto &name : names)
                if (std::find(opt.grid.schedulers.begin(),
                              opt.grid.schedulers.end(),
                              name) == opt.grid.schedulers.end())
                    opt.grid.schedulers.push_back(name);
        } else if (a == "--thresholds") {
            opt.grid.thresholds = needUnsignedList("--thresholds");
        } else if (a == "--trace-seeds") {
            opt.grid.traceSeeds.clear();
            for (const auto &s : splitList(need("--trace-seeds")))
                opt.grid.traceSeeds.push_back(
                    std::strtoull(s.c_str(), nullptr, 10));
        } else if (a == "--l2-kb") {
            opt.grid.l2Kbs = needUnsignedList("--l2-kb");
        } else if (a == "--l2-lat") {
            opt.grid.l2Lats = needUnsignedList("--l2-lat");
        } else if (a == "--mem-lat") {
            opt.grid.memLats = needUnsignedList("--mem-lat");
        } else if (a == "--sample-periods") {
            opt.grid.samplePeriods.clear();
            for (const auto &s : splitList(need("--sample-periods")))
                opt.grid.samplePeriods.push_back(
                    std::strtoull(s.c_str(), nullptr, 10));
        } else if (a == "--sample-detail") {
            opt.grid.sampleDetail = std::strtoull(
                need("--sample-detail").c_str(), nullptr, 10);
        } else if (a == "--sample-warmup") {
            opt.grid.sampleWarmup = std::strtoull(
                need("--sample-warmup").c_str(), nullptr, 10);
        } else if (a == "--fill-ports") {
            opt.grid.fillPorts = static_cast<unsigned>(
                std::atoi(need("--fill-ports").c_str()));
        } else if (a == "--scale") {
            opt.grid.scale = std::atof(need("--scale").c_str());
        } else if (a == "--unroll") {
            opt.grid.unroll = static_cast<unsigned>(
                std::atoi(need("--unroll").c_str()));
        } else if (a == "--predictor") {
            opt.grid.predictor = need("--predictor");
        } else if (a == "--max-insts") {
            opt.grid.maxInsts = std::strtoull(need("--max-insts").c_str(),
                                              nullptr, 10);
        } else if (a == "--max-cycles") {
            opt.grid.maxCycles = std::strtoull(
                need("--max-cycles").c_str(), nullptr, 10);
        } else if (a == "--table2") {
            opt.table2 = true;
        } else if (a == "--jobs" || a == "-j") {
            // Parse-time validation: junk or 0 dies here, before any
            // compile or simulation starts. "auto" asks the host.
            const std::string v = need("--jobs");
            if (v == "auto") {
                const unsigned hw = std::thread::hardware_concurrency();
                opt.jobs = hw ? hw : 1;
            } else {
                char *end = nullptr;
                const unsigned long parsed =
                    std::strtoul(v.c_str(), &end, 10);
                if (v.empty() || end == nullptr || *end != '\0' ||
                    parsed == 0 || parsed > 4096)
                    die("--jobs expects a positive worker count "
                        "(1..4096) or 'auto', got '" + v + "'");
                opt.jobs = static_cast<unsigned>(parsed);
            }
        } else if (a == "--cache") {
            opt.cacheDir = need("--cache");
        } else if (a == "--no-cache") {
            opt.noCache = true;
        } else if (a == "--no-compile-cache") {
            opt.noCompileCache = true;
        } else if (a == "--out") {
            opt.jsonOut = need("--out");
        } else if (a == "--csv") {
            opt.csvOut = need("--csv");
        } else if (a == "--telemetry") {
            opt.telemetryOut = need("--telemetry");
        } else if (a == "--log-level") {
            const std::string text = need("--log-level");
            log::Level level;
            if (!log::parseLevel(text, level))
                die("unknown log level '" + text +
                    "' (valid: debug, info, warn, error, off)");
            log::setThreshold(level);
        } else if (a == "--no-table") {
            opt.printTable = false;
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else {
            usage();
            die("unknown argument: " + a);
        }
    }

    checkChoices(opt.grid.benchmarks, runner::validBenchmarks(),
                 "benchmark");
    checkChoices(opt.grid.machines, runner::validMachines(), "machine");
    checkChoices(opt.grid.schedulers, runner::validSchedulers(),
                 "scheduler");
    if (!opt.grid.predictor.empty())
        checkChoices({opt.grid.predictor}, runner::validPredictors(),
                     "predictor");
    // Memory-axis geometry errors (an L2 size with a non-power-of-two
    // set count, a zero memory latency) surface here as one parse-time
    // error instead of a column of Failed jobs after the run.
    for (unsigned l2kb : opt.grid.l2Kbs)
        for (unsigned l2lat : opt.grid.l2Lats)
            for (unsigned memlat : opt.grid.memLats) {
                runner::JobSpec probe;
                if (!opt.grid.machines.empty())
                    probe.machine = opt.grid.machines.front();
                probe.l2Kb = l2kb;
                probe.l2Lat = l2lat;
                probe.memLat = memlat;
                probe.fillPorts = opt.grid.fillPorts;
                try {
                    runner::machineConfigFor(probe);
                } catch (const std::exception &e) {
                    die(e.what());
                }
            }
    // Same early surfacing for infeasible sampling plans.
    for (std::uint64_t period : opt.grid.samplePeriods)
        if (period > 0 &&
            opt.grid.sampleWarmup + opt.grid.sampleDetail > period)
            die("sample warmup+detail exceeds period " +
                std::to_string(period) + " (intervals would overlap)");
    return opt;
}

/** Open FILE for writing, with '-' standing for stdout. */
void
writeResults(const std::string &path,
             const std::vector<runner::JobResult> &results, bool csv)
{
    auto emit = [&](std::ostream &os) {
        if (csv)
            runner::emitCsv(os, results);
        else
            runner::emitJsonLines(os, results);
    };
    if (path == "-") {
        emit(std::cout);
        return;
    }
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        die("cannot open '" + path + "' for writing");
    emit(out);
}

void
printGridTable(const std::vector<runner::JobResult> &results)
{
    TextTable table;
    table.header({"benchmark", "machine", "scheduler", "thr", "seed",
                  "status", "cycles", "retired", "ipc", "replays",
                  "cache"});
    for (const auto &r : results)
        table.row({r.spec.benchmark, r.spec.machine, r.spec.scheduler,
                   std::to_string(r.spec.threshold),
                   std::to_string(r.spec.traceSeed),
                   runner::jobStatusName(r.status),
                   std::to_string(r.cycles), std::to_string(r.retired),
                   TextTable::num(r.ipc), std::to_string(r.replays),
                   r.fromCache ? "hit" : "miss"});
    table.print(std::cout);
}

void
printTable2(const std::vector<harness::Table2Row> &rows)
{
    std::cout << "Table 2: dual-cluster speedup ratios\n"
              << "  100 - 100*(cycles_dual / cycles_single); "
              << "positive = speedup\n\n";
    TextTable table;
    table.header({"benchmark", "none (paper)", "none (ours)",
                  "local (paper)", "local (ours)", "single cycles",
                  "dual-none cycles", "dual-local cycles", "replays(l)"});
    const auto &paper = harness::paperTable2();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &row = rows[i];
        const bool havePaper = i < paper.size();
        table.row({row.benchmark,
                   havePaper ? TextTable::signedPercent(paper[i].pctNone)
                             : "-",
                   TextTable::signedPercent(row.pctNone),
                   havePaper ? TextTable::signedPercent(paper[i].pctLocal)
                             : "-",
                   TextTable::signedPercent(row.pctLocal),
                   std::to_string(row.single.cycles),
                   std::to_string(row.dualNone.cycles),
                   std::to_string(row.dualLocal.cycles),
                   std::to_string(row.dualLocal.replays)});
    }
    table.print(std::cout);
}

/**
 * Where did the dual-cluster machine lose its cycles? For each
 * benchmark, the per-cause cycle-stack delta between the dual-none run
 * and the single-cluster baseline: positive = cycles the dual machine
 * spends on that cause beyond the single machine. The cause columns sum
 * to the total cycle delta (conservation), so the table decomposes
 * Table 2's slowdown into the paper's §2.1 mechanisms.
 */
void
printTable2Attribution(const std::vector<harness::Table2Row> &rows)
{
    bool have = false;
    for (const auto &row : rows)
        have |= row.single.cycleStack.slots > 0 &&
                row.dualNone.cycleStack.slots > 0;
    if (!have)
        return; // stacks absent (e.g. stale cache entries)

    std::cout << "\nSlowdown attribution (dual/none minus single), "
                 "cycles by cause:\n";
    TextTable table;
    std::vector<std::string> header = {"benchmark", "dCycles"};
    for (std::size_t i = 0; i < obs::kNumStallCauses; ++i)
        header.push_back(
            obs::stallCauseName(static_cast<obs::StallCause>(i)));
    table.header(header);
    for (const auto &row : rows) {
        if (row.single.cycleStack.slots == 0 ||
            row.dualNone.cycleStack.slots == 0)
            continue;
        std::vector<std::string> cells = {
            row.benchmark,
            std::to_string(static_cast<long long>(
                row.dualNone.cycles - row.single.cycles))};
        for (std::size_t i = 0; i < obs::kNumStallCauses; ++i) {
            const auto cause = static_cast<obs::StallCause>(i);
            const double delta =
                row.dualNone.cycleStack.cyclesOf(cause) -
                row.single.cycleStack.cyclesOf(cause);
            cells.push_back(TextTable::num(delta, 0));
        }
        table.row(cells);
    }
    table.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    runner::CampaignOptions campaign;
    campaign.jobs = opt.jobs;
    campaign.cacheDir = opt.noCache ? "" : opt.cacheDir;
    campaign.compileCache = !opt.noCompileCache;
    // The progress line goes to stderr so piped/captured results stay
    // clean; suppress it when stdout is the results sink anyway.
    runner::ProgressPrinter progress(std::cerr, !opt.quiet);
    campaign.onResult = std::ref(progress);

    // The telemetry stream shares the progress callback; runCampaign
    // invokes it under its own lock, so the JSONL records stay totally
    // ordered (done increments by exactly 1 per line).
    std::optional<runner::TelemetryWriter> telemetry;
    if (!opt.telemetryOut.empty()) {
        try {
            telemetry.emplace(opt.telemetryOut);
        } catch (const std::exception &e) {
            die(e.what());
        }
        campaign.onResult = [&](std::size_t finished, std::size_t total,
                                const runner::JobResult &result) {
            progress(finished, total, result);
            telemetry->onResult(finished, total, result);
        };
    }

    runner::CampaignSummary summary;
    std::vector<runner::JobResult> results;
    std::vector<harness::Table2Row> table2Rows;

    if (opt.table2) {
        harness::ExperimentOptions exp;
        exp.workload.scale = opt.grid.scale;
        exp.maxInsts = opt.grid.maxInsts;
        if (!opt.grid.thresholds.empty())
            exp.imbalanceThreshold = opt.grid.thresholds.front();
        if (!opt.grid.traceSeeds.empty())
            exp.traceSeed = opt.grid.traceSeeds.front();
        auto result = runner::runTable2Campaign(exp, campaign);
        results = std::move(result.jobs);
        table2Rows = std::move(result.rows);
        summary = result.summary;
    } else {
        std::vector<runner::JobSpec> specs;
        try {
            specs = runner::expandGrid(opt.grid);
        } catch (const std::exception &e) {
            die(e.what());
        }
        if (telemetry)
            telemetry->start(specs.size(), opt.jobs);
        results = runner::runCampaign(specs, campaign, &summary);
    }
    progress.finish();
    if (telemetry)
        telemetry->finish(summary);

    if (!opt.jsonOut.empty())
        writeResults(opt.jsonOut, results, /*csv=*/false);
    if (!opt.csvOut.empty())
        writeResults(opt.csvOut, results, /*csv=*/true);

    if (opt.printTable) {
        if (opt.table2) {
            printTable2(table2Rows);
            printTable2Attribution(table2Rows);
        } else {
            printGridTable(results);
        }
    }

    for (const auto &r : results)
        if (r.status != runner::JobStatus::Ok)
            MCA_LOG_WARN("mcarun",
                         r.spec.benchmark, "/", r.spec.machine, "/",
                         r.spec.scheduler, " ",
                         runner::jobStatusName(r.status), ": ", r.error);
    runner::emitSummary(std::cerr, summary);
    return 0;
}
