/**
 * @file
 * Dynamic instruction record — one element of the simulated trace.
 */

#ifndef MCA_EXEC_DYNINST_HH
#define MCA_EXEC_DYNINST_HH

#include "isa/inst.hh"
#include "support/types.hh"

namespace mca::exec
{

/**
 * One executed instruction as produced by the trace interpreter:
 * the decoded static instruction plus its dynamic properties (effective
 * address, actual branch direction and target).
 */
struct DynInst
{
    InstSeq seq = 0;
    Addr pc = 0;
    isa::MachInst mi;
    /** Effective address for loads/stores. */
    Addr effAddr = 0;
    /** Actual direction for control flow (true for unconditional). */
    bool taken = false;
    /** PC of the next instruction actually executed. */
    Addr nextPc = 0;
    /** Compiler-inserted spill load/store. */
    bool isSpill = false;
    /**
     * Dynamic register reassignment point (paper §6 extension): index
     * into ProcessorConfig::mapSchedule to switch to before this
     * instruction dispatches, or kNoRemap.
     */
    std::uint32_t remapIndex = kNoRemap;

    static constexpr std::uint32_t kNoRemap = ~std::uint32_t{0};
};

} // namespace mca::exec

#endif // MCA_EXEC_DYNINST_HH
