#include "exec/trace.hh"

#include <stdexcept>

#include "support/panic.hh"

namespace mca::exec
{

void
TraceSource::saveState(ckpt::Writer &) const
{
    throw std::runtime_error(
        "checkpoint: this trace source cannot be checkpointed");
}

void
TraceSource::loadState(ckpt::Reader &)
{
    throw std::runtime_error(
        "checkpoint: this trace source cannot be restored");
}

ProgramTrace::ProgramTrace(prog::MachProgram prog, std::uint64_t seed,
                           std::uint64_t max_insts)
    : prog_(std::move(prog)), seed_(seed), walker_(prog_, seed),
      maxInsts_(max_insts)
{
}

Addr
ProgramTrace::addrFor(const prog::MachEntry &entry)
{
    const prog::AddrStreamId id = entry.stream;
    MCA_ASSERT(id != prog::kNoAddrStream, "memory op without stream");
    auto it = streamStates_.find(id);
    if (it == streamStates_.end()) {
        Rng rng(hashSeed(seed_, 0x5eed5, id));
        it = streamStates_
                 .emplace(id, prog::AddrStreamState(prog_.streams[id], rng))
                 .first;
    }
    return it->second.nextAddr();
}

std::optional<DynInst>
ProgramTrace::next()
{
    if (seq_ >= maxInsts_)
        return std::nullopt;

    WalkSite site;
    if (!walker_.step(site))
        return std::nullopt;

    const auto &entry =
        prog_.functions[site.fn].blocks[site.blk].instrs[site.idx];

    DynInst di;
    di.seq = seq_++;
    di.pc = site.pc;
    di.mi = entry.mi;
    di.taken = site.taken;
    di.nextPc = site.nextPc;
    di.isSpill = entry.isSpill;
    if (isa::isMemOp(entry.mi.op))
        di.effAddr = addrFor(entry);
    return di;
}

void
ProgramTrace::saveState(ckpt::Writer &w) const
{
    w.u64(seed_);
    w.u64(maxInsts_);
    w.u64(seq_);
    walker_.saveState(w);
    w.u64(streamStates_.size());
    for (const auto &[id, st] : streamStates_) {
        w.u32(id);
        for (std::uint64_t word : st.rng().rawState())
            w.u64(word);
        w.u64(st.offset());
        w.u64(st.last());
    }
}

void
ProgramTrace::loadState(ckpt::Reader &r)
{
    const std::uint64_t seed = r.u64();
    const std::uint64_t max_insts = r.u64();
    if (seed != seed_ || max_insts != maxInsts_)
        throw std::runtime_error(
            "checkpoint: trace identity mismatch (snapshot seed/bound " +
            std::to_string(seed) + "/" + std::to_string(max_insts) +
            ", this trace " + std::to_string(seed_) + "/" +
            std::to_string(maxInsts_) + ")");
    seq_ = r.u64();
    walker_.loadState(r);
    streamStates_.clear();
    const std::uint64_t nstreams = r.u64();
    for (std::uint64_t i = 0; i < nstreams; ++i) {
        const prog::AddrStreamId id = r.u32();
        std::array<std::uint64_t, 4> raw;
        for (std::uint64_t &word : raw)
            word = r.u64();
        const std::uint64_t offset = r.u64();
        const Addr last = r.u64();
        MCA_ASSERT(id < prog_.streams.size(),
                   "restored stream id out of range");
        prog::AddrStreamState st(prog_.streams[id],
                                 Rng(hashSeed(seed_, 0x5eed5, id)));
        st.restoreDynamicState(raw, offset, last);
        streamStates_.emplace(id, st);
    }
}

VectorTrace::VectorTrace(std::vector<DynInst> insts)
    : insts_(std::move(insts))
{
}

std::optional<DynInst>
VectorTrace::next()
{
    if (pos_ >= insts_.size())
        return std::nullopt;
    return insts_[pos_++];
}

void
VectorTrace::saveState(ckpt::Writer &w) const
{
    w.u64(insts_.size());
    w.u64(pos_);
}

void
VectorTrace::loadState(ckpt::Reader &r)
{
    const std::uint64_t size = r.u64();
    if (size != insts_.size())
        throw std::runtime_error(
            "checkpoint: vector trace length mismatch");
    pos_ = static_cast<std::size_t>(r.u64());
}

std::vector<DynInst>
VectorTrace::normalize(std::vector<DynInst> insts)
{
    for (std::size_t i = 0; i < insts.size(); ++i) {
        insts[i].seq = i;
        if (insts[i].pc == 0)
            insts[i].pc = 0x1000 + 4 * i;
    }
    // Second pass: successors' PCs are final now.
    for (std::size_t i = 0; i < insts.size(); ++i)
        if (insts[i].nextPc == 0)
            insts[i].nextPc =
                i + 1 < insts.size() ? insts[i + 1].pc : 0;
    return insts;
}

ProfileResult
profileProgram(const prog::Program &prog, std::uint64_t seed,
               std::uint64_t max_insts)
{
    ProfileResult result;
    result.visits.resize(prog.functions.size());
    for (std::size_t f = 0; f < prog.functions.size(); ++f)
        result.visits[f].assign(prog.functions[f].blocks.size(), 0);

    CfgWalker<prog::Program> walker(prog, seed);
    WalkSite site;
    std::uint64_t n = 0;
    bool completed = true;
    while (n < max_insts) {
        if (!walker.step(site)) {
            break;
        }
        // Count a visit when entering instruction 0 of a block.
        if (site.idx == 0)
            ++result.visits[site.fn][site.blk];
        ++n;
    }
    if (n >= max_insts)
        completed = false;
    result.totalInsts = n;
    result.completed = completed;
    return result;
}

void
applyProfile(prog::Program &prog, const ProfileResult &profile)
{
    MCA_ASSERT(profile.visits.size() == prog.functions.size(),
               "profile shape mismatch");
    for (std::size_t f = 0; f < prog.functions.size(); ++f) {
        auto &fn = prog.functions[f];
        MCA_ASSERT(profile.visits[f].size() == fn.blocks.size(),
                   "profile shape mismatch");
        for (std::size_t b = 0; b < fn.blocks.size(); ++b)
            fn.blocks[b].weight =
                static_cast<double>(profile.visits[f][b]);
    }
}

} // namespace mca::exec
