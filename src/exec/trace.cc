#include "exec/trace.hh"

#include "support/panic.hh"

namespace mca::exec
{

ProgramTrace::ProgramTrace(prog::MachProgram prog, std::uint64_t seed,
                           std::uint64_t max_insts)
    : prog_(std::move(prog)), seed_(seed), walker_(prog_, seed),
      maxInsts_(max_insts)
{
}

Addr
ProgramTrace::addrFor(const prog::MachEntry &entry)
{
    const prog::AddrStreamId id = entry.stream;
    MCA_ASSERT(id != prog::kNoAddrStream, "memory op without stream");
    auto it = streamStates_.find(id);
    if (it == streamStates_.end()) {
        Rng rng(hashSeed(seed_, 0x5eed5, id));
        it = streamStates_
                 .emplace(id, prog::AddrStreamState(prog_.streams[id], rng))
                 .first;
    }
    return it->second.nextAddr();
}

std::optional<DynInst>
ProgramTrace::next()
{
    if (seq_ >= maxInsts_)
        return std::nullopt;

    WalkSite site;
    if (!walker_.step(site))
        return std::nullopt;

    const auto &entry =
        prog_.functions[site.fn].blocks[site.blk].instrs[site.idx];

    DynInst di;
    di.seq = seq_++;
    di.pc = site.pc;
    di.mi = entry.mi;
    di.taken = site.taken;
    di.nextPc = site.nextPc;
    di.isSpill = entry.isSpill;
    if (isa::isMemOp(entry.mi.op))
        di.effAddr = addrFor(entry);
    return di;
}

VectorTrace::VectorTrace(std::vector<DynInst> insts)
    : insts_(std::move(insts))
{
}

std::optional<DynInst>
VectorTrace::next()
{
    if (pos_ >= insts_.size())
        return std::nullopt;
    return insts_[pos_++];
}

std::vector<DynInst>
VectorTrace::normalize(std::vector<DynInst> insts)
{
    for (std::size_t i = 0; i < insts.size(); ++i) {
        insts[i].seq = i;
        if (insts[i].pc == 0)
            insts[i].pc = 0x1000 + 4 * i;
    }
    // Second pass: successors' PCs are final now.
    for (std::size_t i = 0; i < insts.size(); ++i)
        if (insts[i].nextPc == 0)
            insts[i].nextPc =
                i + 1 < insts.size() ? insts[i + 1].pc : 0;
    return insts;
}

ProfileResult
profileProgram(const prog::Program &prog, std::uint64_t seed,
               std::uint64_t max_insts)
{
    ProfileResult result;
    result.visits.resize(prog.functions.size());
    for (std::size_t f = 0; f < prog.functions.size(); ++f)
        result.visits[f].assign(prog.functions[f].blocks.size(), 0);

    CfgWalker<prog::Program> walker(prog, seed);
    WalkSite site;
    std::uint64_t n = 0;
    bool completed = true;
    while (n < max_insts) {
        if (!walker.step(site)) {
            break;
        }
        // Count a visit when entering instruction 0 of a block.
        if (site.idx == 0)
            ++result.visits[site.fn][site.blk];
        ++n;
    }
    if (n >= max_insts)
        completed = false;
    result.totalInsts = n;
    result.completed = completed;
    return result;
}

void
applyProfile(prog::Program &prog, const ProfileResult &profile)
{
    MCA_ASSERT(profile.visits.size() == prog.functions.size(),
               "profile shape mismatch");
    for (std::size_t f = 0; f < prog.functions.size(); ++f) {
        auto &fn = prog.functions[f];
        MCA_ASSERT(profile.visits[f].size() == fn.blocks.size(),
                   "profile shape mismatch");
        for (std::size_t b = 0; b < fn.blocks.size(); ++b)
            fn.blocks[b].weight =
                static_cast<double>(profile.visits[f][b]);
    }
}

} // namespace mca::exec
