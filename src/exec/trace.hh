/**
 * @file
 * Trace sources: the stream of dynamic instructions the timing models
 * consume, and the profiler that measures block execution counts.
 */

#ifndef MCA_EXEC_TRACE_HH
#define MCA_EXEC_TRACE_HH

#include <map>
#include <optional>
#include <vector>

#include "exec/dyninst.hh"
#include "exec/walker.hh"
#include "prog/cfg.hh"

namespace mca::exec
{

/** Abstract producer of dynamic instructions. */
class TraceSource : public ckpt::Checkpointable
{
  public:
    ~TraceSource() override = default;

    /** Produce the next instruction, or nullopt at end of trace. */
    virtual std::optional<DynInst> next() = 0;

    /**
     * Checkpointing hooks. Sources that cannot rewind (live pipes)
     * keep the default, which throws std::runtime_error — checkpoint
     * requests on such a source are an input error, not a bug.
     */
    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;
};

/**
 * Trace source that interprets a compiled program.
 *
 * Wraps a CfgWalker over the machine program and attaches effective
 * addresses drawn from the program's address streams. Bounded by
 * max_insts to keep simulations finite even for non-terminating CFGs.
 */
class ProgramTrace : public TraceSource
{
  public:
    /**
     * The program is copied: a ProgramTrace stays valid even if the
     * CompileOutput it came from goes out of scope.
     */
    ProgramTrace(prog::MachProgram prog, std::uint64_t seed,
                 std::uint64_t max_insts = ~std::uint64_t{0});

    std::optional<DynInst> next() override;

    /** Serialize walker cursors, stream states, and the sequence
     *  counter; (program, seed) identity is validated on load. */
    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

  private:
    Addr addrFor(const prog::MachEntry &entry);

    prog::MachProgram prog_;
    std::uint64_t seed_;
    CfgWalker<prog::MachProgram> walker_;
    std::map<prog::AddrStreamId, prog::AddrStreamState> streamStates_;
    std::uint64_t maxInsts_;
    InstSeq seq_ = 0;
};

/** Trace source fed from a prebuilt vector (unit-test harness). */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<DynInst> insts);

    std::optional<DynInst> next() override;

    /** Renumber seq/nextPc fields to be self-consistent. */
    static std::vector<DynInst> normalize(std::vector<DynInst> insts);

    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

  private:
    std::vector<DynInst> insts_;
    std::size_t pos_ = 0;
};

/** Per-block dynamic execution counts from a profiling walk. */
struct ProfileResult
{
    /** visits[fn][blk] = number of times the block was entered. */
    std::vector<std::vector<std::uint64_t>> visits;
    std::uint64_t totalInsts = 0;
    /** True if the walk ended because main returned (vs. inst cap). */
    bool completed = false;
};

/**
 * Execute the IL program's CFG and count block visits (the "profiling
 * run" the paper uses to derive the local scheduler's execution
 * estimates).
 */
ProfileResult profileProgram(const prog::Program &prog, std::uint64_t seed,
                             std::uint64_t max_insts);

/** Store measured profile counts into the program's block weights. */
void applyProfile(prog::Program &prog, const ProfileResult &profile);

} // namespace mca::exec

#endif // MCA_EXEC_TRACE_HH
