/**
 * @file
 * Checkpoint serialization of DynInst / MachInst.
 *
 * The processor's in-flight window carries whole DynInsts (the trace
 * cannot regenerate instructions that were already consumed), so
 * snapshots embed them. Header-only: both core (in-flight window,
 * fetch buffer) and tests use these helpers.
 */

#ifndef MCA_EXEC_DYNINST_IO_HH
#define MCA_EXEC_DYNINST_IO_HH

#include "ckpt/io.hh"
#include "exec/dyninst.hh"

namespace mca::exec
{

inline void
writeReg(ckpt::Writer &w, const std::optional<isa::RegId> &reg)
{
    w.b(reg.has_value());
    if (reg) {
        w.u8(static_cast<std::uint8_t>(reg->cls));
        w.u8(reg->index);
    }
}

inline std::optional<isa::RegId>
readReg(ckpt::Reader &r)
{
    if (!r.b())
        return std::nullopt;
    const auto cls = static_cast<isa::RegClass>(r.u8());
    const std::uint8_t index = r.u8();
    return isa::RegId(cls, index);
}

inline void
writeMachInst(ckpt::Writer &w, const isa::MachInst &mi)
{
    w.u32(static_cast<std::uint32_t>(mi.op));
    writeReg(w, mi.dest);
    writeReg(w, mi.srcs[0]);
    writeReg(w, mi.srcs[1]);
    w.i64(mi.imm);
}

inline isa::MachInst
readMachInst(ckpt::Reader &r)
{
    isa::MachInst mi;
    mi.op = static_cast<isa::Op>(r.u32());
    mi.dest = readReg(r);
    mi.srcs[0] = readReg(r);
    mi.srcs[1] = readReg(r);
    mi.imm = r.i64();
    return mi;
}

inline void
writeDynInst(ckpt::Writer &w, const DynInst &di)
{
    w.u64(di.seq);
    w.u64(di.pc);
    writeMachInst(w, di.mi);
    w.u64(di.effAddr);
    w.b(di.taken);
    w.u64(di.nextPc);
    w.b(di.isSpill);
    w.u32(di.remapIndex);
}

inline DynInst
readDynInst(ckpt::Reader &r)
{
    DynInst di;
    di.seq = r.u64();
    di.pc = r.u64();
    di.mi = readMachInst(r);
    di.effAddr = r.u64();
    di.taken = r.b();
    di.nextPc = r.u64();
    di.isSpill = r.b();
    di.remapIndex = r.u32();
    return di;
}

} // namespace mca::exec

#endif // MCA_EXEC_DYNINST_IO_HH
