/**
 * @file
 * Trace-file input/output.
 *
 * A classic trace-driven-simulation workflow: capture the dynamic
 * instruction stream of a compiled program once, then replay the file
 * through any machine configuration. The format is a little-endian
 * binary stream — a 16-byte header (magic, version, record count)
 * followed by fixed-size records — so traces are portable between runs
 * and diffable by checksum.
 */

#ifndef MCA_EXEC_TRACE_IO_HH
#define MCA_EXEC_TRACE_IO_HH

#include <cstdio>
#include <memory>
#include <string>

#include "exec/trace.hh"
#include "isa/registers.hh"

namespace mca::exec
{

/** Magic bytes at the start of every trace file. */
inline constexpr char kTraceMagic[8] = {'M', 'C', 'A', 'T',
                                        'R', 'C', '0', '2'};

/**
 * Drain `source` (up to max_insts) into a trace file.
 *
 * @param global_regs  Registers the producing binary treats as global
 *     (CompileOutput's alloc.globalRegs). Stored in the header so a
 *     replaying machine can reconstruct the register-to-cluster map —
 *     without it, promoted globals would silently replay as locals.
 * @return number of instructions written.
 */
std::uint64_t writeTrace(const std::string &path, TraceSource &source,
                         const std::vector<isa::RegId> &global_regs = {},
                         std::uint64_t max_insts = ~std::uint64_t{0});

/** Streaming trace-file reader. Fatal on malformed files. */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(const std::string &path);
    ~FileTrace() override;

    FileTrace(const FileTrace &) = delete;
    FileTrace &operator=(const FileTrace &) = delete;

    std::optional<DynInst> next() override;

    /** Total records the header promises. */
    std::uint64_t count() const { return count_; }

    /** Global registers recorded by the producer. */
    const std::vector<isa::RegId> &globalRegs() const
    {
        return globalRegs_;
    }

    /** Mark the recorded globals in a machine's register map. */
    void
    applyGlobals(isa::RegisterMap &map) const
    {
        for (const auto &reg : globalRegs_)
            map.setGlobal(reg);
    }

    /** Checkpoint = record cursor; restore seeks the file back. */
    void saveState(ckpt::Writer &w) const override;
    void loadState(ckpt::Reader &r) override;

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
    std::uint64_t read_ = 0;
    std::vector<isa::RegId> globalRegs_;
};

} // namespace mca::exec

#endif // MCA_EXEC_TRACE_IO_HH
