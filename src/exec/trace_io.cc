#include "exec/trace_io.hh"

#include <cstring>
#include <stdexcept>

#include "support/panic.hh"

namespace mca::exec
{

namespace
{

/** On-disk record layout (little-endian, 48 bytes). */
struct PackedRecord
{
    std::uint64_t seq;
    std::uint64_t pc;
    std::uint64_t effAddr;
    std::uint64_t nextPc;
    std::int64_t imm;
    std::uint8_t op;
    std::uint8_t flags; // bit0 taken, bit1 isSpill, bit2 hasDest
    std::uint16_t dest; // cls<<8 | index, 0xffff = none
    std::uint16_t src0; // likewise
    std::uint16_t src1;
};
static_assert(sizeof(PackedRecord) == 48, "record layout changed");

std::uint16_t
packReg(const std::optional<isa::RegId> &reg)
{
    if (!reg)
        return 0xffff;
    return static_cast<std::uint16_t>(
        (static_cast<unsigned>(reg->cls) << 8) | reg->index);
}

std::optional<isa::RegId>
unpackReg(std::uint16_t packed)
{
    if (packed == 0xffff)
        return std::nullopt;
    return isa::RegId(static_cast<isa::RegClass>(packed >> 8),
                      packed & 0xff);
}

PackedRecord
pack(const DynInst &di)
{
    PackedRecord r{};
    r.seq = di.seq;
    r.pc = di.pc;
    r.effAddr = di.effAddr;
    r.nextPc = di.nextPc;
    r.imm = di.mi.imm;
    r.op = static_cast<std::uint8_t>(di.mi.op);
    r.flags = static_cast<std::uint8_t>((di.taken ? 1 : 0) |
                                        (di.isSpill ? 2 : 0));
    r.dest = packReg(di.mi.dest);
    r.src0 = packReg(di.mi.srcs[0]);
    r.src1 = packReg(di.mi.srcs[1]);
    return r;
}

DynInst
unpack(const PackedRecord &r)
{
    DynInst di;
    di.seq = r.seq;
    di.pc = r.pc;
    di.effAddr = r.effAddr;
    di.nextPc = r.nextPc;
    di.mi.imm = r.imm;
    di.mi.op = static_cast<isa::Op>(r.op);
    MCA_ASSERT(r.op < static_cast<std::uint8_t>(isa::Op::NumOps),
               "corrupt trace record: bad opcode");
    di.taken = (r.flags & 1) != 0;
    di.isSpill = (r.flags & 2) != 0;
    di.mi.dest = unpackReg(r.dest);
    di.mi.srcs[0] = unpackReg(r.src0);
    di.mi.srcs[1] = unpackReg(r.src1);
    return di;
}

} // namespace

std::uint64_t
writeTrace(const std::string &path, TraceSource &source,
           const std::vector<isa::RegId> &global_regs,
           std::uint64_t max_insts)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        MCA_FATAL("cannot open trace file for writing: ", path);

    std::uint64_t count = 0;
    // Header: magic + count placeholder + the producer's global
    // registers as per-class bitmasks.
    std::fwrite(kTraceMagic, 1, sizeof(kTraceMagic), f);
    std::fwrite(&count, sizeof(count), 1, f);
    std::uint32_t masks[2] = {0, 0};
    for (const auto &reg : global_regs)
        masks[static_cast<unsigned>(reg.cls)] |= (1u << reg.index);
    std::fwrite(masks, sizeof(masks), 1, f);

    while (count < max_insts) {
        auto di = source.next();
        if (!di)
            break;
        MCA_ASSERT(di->remapIndex == DynInst::kNoRemap,
                   "remap points are not serializable");
        const PackedRecord r = pack(*di);
        if (std::fwrite(&r, sizeof(r), 1, f) != 1)
            MCA_FATAL("short write to trace file: ", path);
        ++count;
    }

    // Patch the count.
    std::fseek(f, sizeof(kTraceMagic), SEEK_SET);
    std::fwrite(&count, sizeof(count), 1, f);
    std::fclose(f);
    return count;
}

FileTrace::FileTrace(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        MCA_FATAL("cannot open trace file: ", path);
    char magic[sizeof(kTraceMagic)];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, kTraceMagic, sizeof(magic)) != 0)
        MCA_FATAL("not a multicluster trace file: ", path);
    if (std::fread(&count_, sizeof(count_), 1, file_) != 1)
        MCA_FATAL("truncated trace header: ", path);
    std::uint32_t masks[2];
    if (std::fread(masks, sizeof(masks), 1, file_) != 1)
        MCA_FATAL("truncated trace header: ", path);
    for (unsigned ci = 0; ci < 2; ++ci)
        for (unsigned i = 0; i < isa::kNumArchRegs; ++i)
            if (masks[ci] & (1u << i))
                globalRegs_.push_back(
                    isa::RegId(static_cast<isa::RegClass>(ci), i));
}

FileTrace::~FileTrace()
{
    if (file_)
        std::fclose(file_);
}

std::optional<DynInst>
FileTrace::next()
{
    if (read_ >= count_)
        return std::nullopt;
    PackedRecord r;
    if (std::fread(&r, sizeof(r), 1, file_) != 1)
        MCA_FATAL("trace file shorter than its header promises");
    ++read_;
    return unpack(r);
}

void
FileTrace::saveState(ckpt::Writer &w) const
{
    w.u64(count_);
    w.u64(read_);
}

void
FileTrace::loadState(ckpt::Reader &r)
{
    const std::uint64_t count = r.u64();
    if (count != count_)
        throw std::runtime_error(
            "checkpoint: trace file record count mismatch (snapshot " +
            std::to_string(count) + ", file " + std::to_string(count_) +
            ")");
    read_ = r.u64();
    if (read_ > count_)
        throw std::runtime_error(
            "checkpoint: trace cursor beyond end of file");
    // Header: magic + count + global-register masks, then records.
    const long header = static_cast<long>(sizeof(kTraceMagic) +
                                          sizeof(count_) +
                                          2 * sizeof(std::uint32_t));
    const long offset =
        header + static_cast<long>(read_ * sizeof(PackedRecord));
    if (std::fseek(file_, offset, SEEK_SET) != 0)
        throw std::runtime_error("checkpoint: trace file seek failed");
}

} // namespace mca::exec
