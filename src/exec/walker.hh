/**
 * @file
 * Deterministic CFG walker shared by the tracer and the profiler.
 *
 * The walker advances instruction by instruction through a program's CFG,
 * resolving conditional branches through their behaviour models and
 * indirect jumps through per-site weighted draws. All randomness is
 * derived by hashing (seed, site identifiers), so the walk is a pure
 * function of (program shape, seed) — the property that lets the native
 * and rescheduled binaries replay the identical path.
 *
 * The walker is a template instantiable over prog::Program (IL level, used
 * for profiling) and prog::MachProgram (used for trace generation).
 */

#ifndef MCA_EXEC_WALKER_HH
#define MCA_EXEC_WALKER_HH

#include <cstdint>
#include <map>
#include <vector>

#include "ckpt/io.hh"
#include "prog/cfg.hh"
#include "support/panic.hh"
#include "support/random.hh"

namespace mca::exec
{

/** Uniform access to the fields that differ between Instr and MachEntry. */
inline isa::Op instrOp(const prog::Instr &in) { return in.op; }
inline isa::Op instrOp(const prog::MachEntry &e) { return e.mi.op; }

inline prog::BranchModelId
instrBranchModel(const prog::Instr &in)
{
    return in.branchModel;
}

inline prog::BranchModelId
instrBranchModel(const prog::MachEntry &e)
{
    return e.branchModel;
}

inline prog::FunctionId instrCallee(const prog::Instr &in)
{
    return in.callee;
}

inline prog::FunctionId instrCallee(const prog::MachEntry &e)
{
    return e.callee;
}

/** Mix a site identifier into a seed (splitmix-style avalanche). */
inline std::uint64_t
hashSeed(std::uint64_t seed, std::uint64_t salt, std::uint64_t id)
{
    std::uint64_t z = seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                      (id * 0xbf58476d1ce4e5b9ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** One step of a CFG walk. */
struct WalkSite
{
    prog::FunctionId fn = 0;
    prog::BlockId blk = 0;
    std::uint32_t idx = 0;
    /** Direction taken if the instruction is control flow. */
    bool taken = false;
    Addr pc = 0;
    /** PC of the next instruction on the walk (0 at program end). */
    Addr nextPc = 0;
};

template <typename ProgT>
class CfgWalker
{
  public:
    CfgWalker(const ProgT &prog, std::uint64_t seed)
        : prog_(&prog), seed_(seed)
    {
        MCA_ASSERT(!prog.functions.empty(), "walking empty program");
    }

    /**
     * Advance one instruction. Returns false when the program has ended
     * (main returned); `out` is untouched in that case.
     */
    bool
    step(WalkSite &out)
    {
        if (ended_)
            return false;

        const auto &fn = prog_->functions[fn_];
        const auto &blk = fn.blocks[blk_];
        MCA_ASSERT(idx_ < blk.instrs.size() || blk.instrs.empty(),
                   "walker index out of range");

        // Empty blocks simply fall through.
        if (blk.instrs.empty()) {
            MCA_ASSERT(blk.succs.size() == 1, "empty block needs 1 succ");
            blk_ = blk.succs[0];
            idx_ = 0;
            return step(out);
        }

        const auto &in = blk.instrs[idx_];
        const isa::Op op = instrOp(in);

        out.fn = fn_;
        out.blk = blk_;
        out.idx = idx_;
        out.pc = blk.startPc + 4 * idx_;
        out.taken = false;

        const bool is_term = (idx_ + 1 == blk.instrs.size());

        if (!is_term || !isa::isCtrlFlow(op)) {
            // Mid-block instruction, or a fall-through terminator.
            if (!is_term) {
                ++idx_;
                out.nextPc = out.pc + 4;
            } else {
                MCA_ASSERT(blk.succs.size() == 1,
                           "fall-through block needs 1 succ");
                moveTo(blk.succs[0]);
                out.nextPc = currentPc();
            }
            return true;
        }

        // Control-flow terminator.
        switch (op) {
          case isa::Op::Br:
            out.taken = true;
            moveTo(blk.succs[0]);
            break;
          case isa::Op::Beq: case isa::Op::Bne:
          case isa::Op::FBeq: case isa::Op::FBne: {
            const bool taken = branchOutcome(in);
            out.taken = taken;
            moveTo(blk.succs[taken ? 1 : 0]);
            break;
          }
          case isa::Op::Jmp: {
            out.taken = true;
            moveTo(blk.succs[pickSuccessor(blk)]);
            break;
          }
          case isa::Op::Jsr: {
            out.taken = true;
            const prog::FunctionId callee = instrCallee(in);
            callStack_.push_back({fn_, blk.succs[0]});
            fn_ = callee;
            blk_ = 0;
            idx_ = 0;
            break;
          }
          case isa::Op::Ret: {
            out.taken = true;
            if (callStack_.empty()) {
                ended_ = true;
                out.nextPc = 0;
                return true;
            }
            const auto frame = callStack_.back();
            callStack_.pop_back();
            fn_ = frame.fn;
            blk_ = frame.contBlock;
            idx_ = 0;
            break;
          }
          default:
            MCA_PANIC("unhandled terminator op");
        }
        out.nextPc = currentPc();
        return true;
    }

    /** Count of dynamic call-stack frames (diagnostics). */
    std::size_t stackDepth() const { return callStack_.size(); }

    /**
     * Serialize the walk state. The program is static content the
     * restoring walker already holds; only cursors, the call stack, and
     * the dynamic halves of the lazily created model states are saved
     * (model descriptions are rebuilt from the program by id).
     */
    void
    saveState(ckpt::Writer &w) const
    {
        w.u32(fn_);
        w.u32(blk_);
        w.u32(idx_);
        w.b(ended_);
        w.u64(callStack_.size());
        for (const Frame &f : callStack_) {
            w.u32(f.fn);
            w.u32(f.contBlock);
        }
        w.u64(branchStates_.size());
        for (const auto &[id, st] : branchStates_) {
            w.u32(id);
            for (std::uint64_t word : st.rng().rawState())
                w.u64(word);
            w.u64(st.remainingTrips());
            w.u64(st.patternPos());
        }
        w.u64(jumpRngs_.size());
        for (const auto &[site, rng] : jumpRngs_) {
            w.u64(site);
            for (std::uint64_t word : rng.rawState())
                w.u64(word);
        }
    }

    /** Restore state saved by a walker over the same (program, seed). */
    void
    loadState(ckpt::Reader &r)
    {
        fn_ = r.u32();
        blk_ = r.u32();
        idx_ = r.u32();
        ended_ = r.b();
        callStack_.clear();
        const std::uint64_t frames = r.u64();
        for (std::uint64_t i = 0; i < frames; ++i) {
            Frame f;
            f.fn = r.u32();
            f.contBlock = r.u32();
            callStack_.push_back(f);
        }
        branchStates_.clear();
        const std::uint64_t nbranch = r.u64();
        for (std::uint64_t i = 0; i < nbranch; ++i) {
            const prog::BranchModelId id = r.u32();
            std::array<std::uint64_t, 4> raw;
            for (std::uint64_t &word : raw)
                word = r.u64();
            const std::uint64_t remaining = r.u64();
            const std::uint64_t pattern_pos = r.u64();
            MCA_ASSERT(id < prog_->branchModels.size(),
                       "restored branch model id out of range");
            prog::BranchModelState st(prog_->branchModels[id],
                                      Rng(hashSeed(seed_, 0xb7a9c4, id)));
            st.restoreDynamicState(raw, remaining,
                                   static_cast<std::size_t>(pattern_pos));
            branchStates_.emplace(id, std::move(st));
        }
        jumpRngs_.clear();
        const std::uint64_t njump = r.u64();
        for (std::uint64_t i = 0; i < njump; ++i) {
            const std::uint64_t site = r.u64();
            std::array<std::uint64_t, 4> raw;
            for (std::uint64_t &word : raw)
                word = r.u64();
            Rng rng(0);
            rng.setRawState(raw);
            jumpRngs_.emplace(site, rng);
        }
    }

  private:
    struct Frame
    {
        prog::FunctionId fn;
        prog::BlockId contBlock;
    };

    void
    moveTo(prog::BlockId next)
    {
        blk_ = next;
        idx_ = 0;
    }

    /** PC of the walker's current position (skipping empty blocks). */
    Addr
    currentPc()
    {
        // Skip empty blocks so the reported nextPc is a real instruction.
        for (;;) {
            const auto &fn = prog_->functions[fn_];
            const auto &blk = fn.blocks[blk_];
            if (!blk.instrs.empty())
                return blk.startPc + 4 * idx_;
            MCA_ASSERT(blk.succs.size() == 1, "empty block needs 1 succ");
            blk_ = blk.succs[0];
            idx_ = 0;
        }
    }

    template <typename InstrT>
    bool
    branchOutcome(const InstrT &in)
    {
        const prog::BranchModelId id = instrBranchModel(in);
        MCA_ASSERT(id != prog::kNoBranchModel, "branch without model");
        auto it = branchStates_.find(id);
        if (it == branchStates_.end()) {
            Rng rng(hashSeed(seed_, 0xb7a9c4, id));
            it = branchStates_
                     .emplace(id, prog::BranchModelState(
                                      prog_->branchModels[id], rng))
                     .first;
        }
        return it->second.nextOutcome();
    }

    template <typename BlockT>
    std::size_t
    pickSuccessor(const BlockT &blk)
    {
        const std::uint64_t site =
            (std::uint64_t{fn_} << 32) | blk.id;
        auto it = jumpRngs_.find(site);
        if (it == jumpRngs_.end())
            it = jumpRngs_.emplace(site, Rng(hashSeed(seed_, 0x1d3a5, site)))
                     .first;
        Rng &rng = it->second;

        if (blk.succWeights.empty())
            return rng.nextBelow(blk.succs.size());

        double total = 0;
        for (double w : blk.succWeights)
            total += w;
        double draw = rng.nextDouble() * total;
        for (std::size_t i = 0; i < blk.succWeights.size(); ++i) {
            draw -= blk.succWeights[i];
            if (draw <= 0)
                return i;
        }
        return blk.succWeights.size() - 1;
    }

    const ProgT *prog_;
    std::uint64_t seed_;
    prog::FunctionId fn_ = 0;
    prog::BlockId blk_ = 0;
    std::uint32_t idx_ = 0;
    bool ended_ = false;
    std::vector<Frame> callStack_;
    std::map<prog::BranchModelId, prog::BranchModelState> branchStates_;
    std::map<std::uint64_t, Rng> jumpRngs_;
};

} // namespace mca::exec

#endif // MCA_EXEC_WALKER_HH
