#!/usr/bin/env python3
"""Simulator-throughput regression gate (run from scripts/ci.sh).

ci.sh copies the committed BENCH_*.json files aside before regenerating
them, then calls this script with both directories. The gate compares
aggregate throughput metrics (geometric means, so no single workload
dominates) and fails when a fresh metric regresses by more than the
allowed fraction:

  BENCH_core.json     scan/event simulated cycles per second   (15%)
  BENCH_compile.json  Table-2 campaign jobs per second         (15%)
  BENCH_sample.json   sampled-simulation effective speedup     (35%)

The sampled gate is looser because its numerator and denominator are
both single wall-clock measurements of multi-second runs; the core and
compile numbers average many iterations. Boolean quality bits are hard
requirements on the *fresh* files regardless of history:
BENCH_mem.json conservation/determinism, BENCH_sample.json target_met
and per-row conservation, BENCH_partition.json multilevel-vs-roundrobin
cut and multilevel-vs-local IPC geomeans.

A missing previous file skips that comparison (first run on a branch);
a missing fresh file is an error.

Usage: perf_gate.py PREV_DIR FRESH_DIR [--threshold FRAC]
"""

import json
import math
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.15
SAMPLE_THRESHOLD = 0.35


def geomean(values):
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def load(path):
    with open(path) as f:
        return json.load(f)


def core_metrics(doc):
    rows = doc["workloads"]
    return {
        "core.scan_cps": geomean(
            [r["scan_cycles_per_sec"] for r in rows]),
        "core.event_cps": geomean(
            [r["event_cycles_per_sec"] for r in rows]),
    }


def print_ns_per_cycle(prev_dir, fresh_dir):
    """Informational: host cost per simulated cycle, per workload,
    with the per-workload delta against the pre-run baseline.

    The reciprocal of the gated cycles-per-second metrics, in the units
    docs/profiling.md works in. Older BENCH_core.json files predate the
    fields, so absence is not an error; a negative delta means the
    fresh run spends fewer host ns per simulated cycle (faster).
    """
    path = fresh_dir / "BENCH_core.json"
    if not path.exists():
        return
    rows = load(path).get("workloads", [])
    if not rows or "event_ns_per_cycle" not in rows[0]:
        return
    prev_rows = {}
    prev_path = prev_dir / "BENCH_core.json"
    if prev_path.exists():
        for r in load(prev_path).get("workloads", []):
            if r.get("event_ns_per_cycle", 0.0) > 0:
                prev_rows[r["workload"]] = r
    print("  host ns per simulated cycle (event engine, "
          "delta vs pre-run baseline):")
    for r in rows:
        prev = prev_rows.get(r["workload"])
        if prev:
            delta = (r["event_ns_per_cycle"] /
                     prev["event_ns_per_cycle"] - 1.0) * 100.0
            delta_col = "%+7.1f%%" % delta
        else:
            delta_col = "     n/a"
        print("    %-10s %8.1f ns/cycle (scan %8.1f)  %s"
              % (r["workload"], r["event_ns_per_cycle"],
                 r.get("scan_ns_per_cycle", 0.0), delta_col))


def compile_metrics(doc):
    wall = doc["wall_s_cache"]
    return {"compile.jobs_per_s":
            doc["table2_jobs"] / wall if wall > 0 else 0.0}


def sample_metrics(doc):
    return {"sample.speedup":
            geomean([r["speedup"] for r in doc["rows"]])}


def check_booleans(fresh_dir, failures):
    mem = fresh_dir / "BENCH_mem.json"
    if mem.exists():
        doc = load(mem)
        for key in ("conservation_ok", "paper_mode_deterministic"):
            if not doc.get(key, False):
                failures.append("BENCH_mem.json: %s is false" % key)
    sample = fresh_dir / "BENCH_sample.json"
    if sample.exists():
        doc = load(sample)
        if not doc.get("target_met", False):
            failures.append("BENCH_sample.json: target_met is false "
                            "(no benchmark at 7x speedup with <=2% "
                            "CPI error)")
        for row in doc.get("rows", []):
            if not row.get("conserved", False):
                failures.append(
                    "BENCH_sample.json: %s violated cycle-stack "
                    "conservation" % row.get("benchmark", "?"))
            if not row.get("pipe_identical", True):
                failures.append(
                    "BENCH_sample.json: %s pipelined (jobs=2) estimate "
                    "differs from serial" % row.get("benchmark", "?"))
    partition = fresh_dir / "BENCH_partition.json"
    if partition.exists():
        doc = load(partition)
        if doc.get("jobs_ok") != doc.get("jobs_total"):
            failures.append(
                "BENCH_partition.json: %s/%s jobs succeeded"
                % (doc.get("jobs_ok"), doc.get("jobs_total")))
        for key in ("ml_cut_le_roundrobin", "ml_ipc_ge_local_quad8",
                    "ml_ipc_ge_local_octa8"):
            if not doc.get(key, False):
                failures.append(
                    "BENCH_partition.json: %s is false" % key)


FILES = [
    ("BENCH_core.json", core_metrics, None),
    ("BENCH_compile.json", compile_metrics, None),
    ("BENCH_sample.json", sample_metrics, SAMPLE_THRESHOLD),
]


def main():
    args = sys.argv[1:]
    threshold = DEFAULT_THRESHOLD
    if "--threshold" in args:
        i = args.index("--threshold")
        threshold = float(args[i + 1])
        del args[i:i + 2]
    if len(args) != 2:
        sys.exit(__doc__)
    prev_dir, fresh_dir = Path(args[0]), Path(args[1])

    failures = []
    check_booleans(fresh_dir, failures)

    print("perf_gate.py: previous=%s fresh=%s" % (prev_dir, fresh_dir))
    for name, extract, own_threshold in FILES:
        allowed = own_threshold if own_threshold is not None else threshold
        fresh_path = fresh_dir / name
        if not fresh_path.exists():
            failures.append("%s: fresh file missing (benchmark did not "
                            "run?)" % name)
            continue
        prev_path = prev_dir / name
        if not prev_path.exists():
            print("  %-20s no previous copy, skipping (first run)"
                  % name)
            continue
        prev = extract(load(prev_path))
        fresh = extract(load(fresh_path))
        for metric in sorted(prev):
            p, f = prev[metric], fresh.get(metric, 0.0)
            ratio = f / p if p > 0 else 1.0
            verdict = "ok"
            if ratio < 1.0 - allowed:
                verdict = "REGRESSION (>%d%% allowed)" % (allowed * 100)
                failures.append(
                    "%s: %s fell %.1f%% (%.3g -> %.3g)"
                    % (name, metric, (1.0 - ratio) * 100.0, p, f))
            print("  %-20s %-18s %10.3g -> %10.3g  (%+5.1f%%) %s"
                  % (name, metric, p, f, (ratio - 1.0) * 100.0, verdict))

    print_ns_per_cycle(prev_dir, fresh_dir)

    if failures:
        print("perf_gate.py: FAIL")
        for failure in failures:
            print("  " + failure)
        sys.exit(1)
    print("perf_gate.py: OK")


if __name__ == "__main__":
    main()
