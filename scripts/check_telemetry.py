#!/usr/bin/env python3
"""Validate an `mcarun --telemetry` JSONL stream (run from ci.sh).

The stream's contract (src/runner/telemetry.hh): every line is one
self-contained JSON object; an optional leading "start" record carries
the job total; each finished job appends a "job" record whose `done`
counter increases by exactly 1 (the campaign invokes the progress
callback under its lock, so records are totally ordered); a final
"summary" record closes the stream. This script asserts exactly that —
it is the executable form of the contract:

  - every line parses as JSON with a known "event" type;
  - the "start" record carries the resolved worker width (jobs >= 1);
  - "job" records count done = 1, 2, ..., total with done <= total;
  - elapsed_ms is non-decreasing and eta_ms is never negative;
  - cache_hits <= done, and the final job record's done == total;
  - the "summary" record is present, last, and consistent with the
    job stream (total and from_cache match what was counted), and
    carries the task-graph executor's critical_path_ms (>= 0, not
    above the campaign wall clock by more than rounding) and
    max_queue_depth (>= 0) stats.

Usage: check_telemetry.py FILE [--expect-total N]
Exit status 0 when the stream honours the contract, 1 otherwise.
"""

import json
import sys


def fail(line_no, msg):
    sys.exit("check_telemetry.py: line %d: %s" % (line_no, msg))


def main():
    args = sys.argv[1:]
    expect_total = None
    if "--expect-total" in args:
        i = args.index("--expect-total")
        expect_total = int(args[i + 1])
        del args[i:i + 2]
    if len(args) != 1:
        sys.exit(__doc__)

    records = []
    with open(args[0]) as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                fail(line_no, "blank line in JSONL stream")
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(line_no, "not valid JSON: %s" % e)
            if rec.get("event") not in ("start", "job", "summary"):
                fail(line_no, "unknown event %r" % rec.get("event"))
            records.append((line_no, rec))

    if not records:
        sys.exit("check_telemetry.py: %s: empty stream" % args[0])

    total = None
    done = 0
    cache_hits = 0
    last_elapsed = 0.0
    summary = None
    for line_no, rec in records:
        if summary is not None:
            fail(line_no, "record after the summary")
        event = rec["event"]
        if event == "start":
            if done:
                fail(line_no, "start record after job records")
            total = rec["total"]
            if "jobs" not in rec:
                fail(line_no, "start record without a jobs width")
            if rec["jobs"] < 1:
                fail(line_no, "start jobs width %d < 1" % rec["jobs"])
        elif event == "job":
            if rec["done"] != done + 1:
                fail(line_no, "done jumped %d -> %d (expected +1)"
                     % (done, rec["done"]))
            done = rec["done"]
            if total is None:
                total = rec["total"]
            elif rec["total"] != total:
                fail(line_no, "total changed %d -> %d"
                     % (total, rec["total"]))
            if done > total:
                fail(line_no, "done %d exceeds total %d" % (done, total))
            if rec["elapsed_ms"] < last_elapsed:
                fail(line_no, "elapsed_ms went backwards (%g -> %g)"
                     % (last_elapsed, rec["elapsed_ms"]))
            last_elapsed = rec["elapsed_ms"]
            if rec["eta_ms"] < 0:
                fail(line_no, "negative eta_ms %g" % rec["eta_ms"])
            if rec["cache_hits"] > done:
                fail(line_no, "cache_hits %d exceeds done %d"
                     % (rec["cache_hits"], done))
            cache_hits = rec["cache_hits"]
            if "job" not in rec or "key" not in rec["job"]:
                fail(line_no, "job record without a job key")
        else:
            summary = (line_no, rec)

    if summary is None:
        sys.exit("check_telemetry.py: %s: no summary record" % args[0])
    line_no, rec = summary
    if rec["total"] != done:
        fail(line_no, "summary total %d != %d job records"
             % (rec["total"], done))
    if rec["from_cache"] != cache_hits:
        fail(line_no, "summary from_cache %d != last cache_hits %d"
             % (rec["from_cache"], cache_hits))
    if "critical_path_ms" not in rec or "max_queue_depth" not in rec:
        fail(line_no, "summary missing executor stats "
             "(critical_path_ms / max_queue_depth)")
    if rec["critical_path_ms"] < 0:
        fail(line_no, "negative critical_path_ms %g"
             % rec["critical_path_ms"])
    # Allow generous slack: the critical path is measured per-node and
    # can exceed wall_ms only by scheduling/rounding noise.
    if rec["critical_path_ms"] > rec["wall_ms"] * 1.5 + 50.0:
        fail(line_no, "critical_path_ms %g implausibly exceeds "
             "wall_ms %g" % (rec["critical_path_ms"], rec["wall_ms"]))
    if rec["max_queue_depth"] < 0:
        fail(line_no, "negative max_queue_depth %d"
             % rec["max_queue_depth"])
    if expect_total is not None and done != expect_total:
        sys.exit("check_telemetry.py: expected %d jobs, stream has %d"
                 % (expect_total, done))

    print("check_telemetry.py: OK (%d jobs, %d from cache, %.1f ms)"
          % (done, cache_hits, last_elapsed))


if __name__ == "__main__":
    main()
