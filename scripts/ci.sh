#!/bin/sh
# Tier-1 verification, exactly as the project's canonical verify line:
# configure, build, and run the full test suite. Fails fast on the
# first broken step.
#
#   scripts/ci.sh [build-dir]
set -e

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
cd "$BUILD"
ctest --output-on-failure -j

# Observability smoke: cycle stacks conserve and the Perfetto trace is
# loadable (scripts/check_trace.py validates both).
cd "$ROOT"
SIM="$BUILD/src/tools/mcasim"
"$SIM" --benchmark ora --max-insts 5000 --cycle-stacks --quiet \
    --trace-out /tmp/mca_ci_trace.json >/dev/null
"$SIM" --benchmark ora --max-insts 5000 --cycle-stacks --quiet --json \
    >/tmp/mca_ci_stats.json 2>/dev/null
python3 scripts/check_trace.py /tmp/mca_ci_trace.json \
    /tmp/mca_ci_stats.json

# Paranoid smoke: replay ora with every-cycle invariant checking of the
# rename maps, free lists, and transfer-buffer bookkeeping, on both
# issue engines.
"$SIM" --benchmark ora --max-insts 5000 --paranoid --quiet >/dev/null
"$SIM" --benchmark ora --max-insts 5000 --paranoid --issue-engine scan \
    --quiet >/dev/null

# Simulator-throughput benchmark: Scan vs Event issue engine, recorded
# at the repo root for regression tracking (see EXPERIMENTS.md).
"$BUILD/bench/micro_perf" --json-out "$ROOT/BENCH_core.json"
