#!/bin/sh
# Tier-1 verification, exactly as the project's canonical verify line:
# configure, build, and run the full test suite. Fails fast on the
# first broken step.
#
#   scripts/ci.sh [build-dir]
set -e

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

# Keep the committed benches aside before regenerating them below; the
# perf gate at the end compares fresh vs previous throughput.
PREV_BENCH="$(mktemp -d /tmp/mca_prev_bench.XXXXXX)"
for f in BENCH_core.json BENCH_compile.json BENCH_mem.json \
         BENCH_sample.json BENCH_partition.json; do
    [ -f "$f" ] && cp "$f" "$PREV_BENCH/$f"
done

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
cd "$BUILD"
ctest --output-on-failure -j

# Sanitizer job: the full test suite again under ASan+UBSan (separate
# build tree; every finding is fatal via -fno-sanitize-recover=all).
cd "$ROOT"
cmake -B "$BUILD-asan" -S . -DMCA_SANITIZE=ON
cmake --build "$BUILD-asan" -j
cd "$BUILD-asan"
ctest --output-on-failure -j
cd "$ROOT"

# ThreadSanitizer job: the concurrent subsystems — task-graph executor,
# campaign runner, sampled driver — under TSan (separate build tree;
# only the affected test binaries are built and run, the rest of the
# suite is single-threaded and covered by the ASan job above).
cmake -B "$BUILD-tsan" -S . -DMCA_SANITIZE=thread
cmake --build "$BUILD-tsan" -j \
    --target taskgraph_test runner_test sample_test
"$BUILD-tsan/tests/taskgraph_test"
"$BUILD-tsan/tests/runner_test"
"$BUILD-tsan/tests/sample_test"

cd "$BUILD"

# Observability smoke: cycle stacks conserve and the Perfetto trace is
# loadable (scripts/check_trace.py validates both).
cd "$ROOT"
SIM="$BUILD/src/tools/mcasim"
"$SIM" --benchmark ora --max-insts 5000 --cycle-stacks --quiet \
    --trace-out /tmp/mca_ci_trace.json >/dev/null
"$SIM" --benchmark ora --max-insts 5000 --cycle-stacks --quiet --json \
    >/tmp/mca_ci_stats.json 2>/dev/null
python3 scripts/check_trace.py /tmp/mca_ci_trace.json \
    /tmp/mca_ci_stats.json

# Paranoid smoke: replay ora with every-cycle invariant checking of the
# rename maps, free lists, and transfer-buffer bookkeeping, on both
# issue engines.
"$SIM" --benchmark ora --max-insts 5000 --paranoid --quiet >/dev/null
"$SIM" --benchmark ora --max-insts 5000 --paranoid --issue-engine scan \
    --quiet >/dev/null

# Verified-compile smoke: every pass's output passes prog::verifyIR on
# all three schedulers, with dumps and per-pass stats exercised.
"$SIM" --benchmark ora --max-insts 5000 --verify-ir --pass-stats \
    --quiet >/dev/null
"$SIM" --benchmark ora --max-insts 5000 --scheduler native \
    --machine single8 --verify-ir --quiet >/dev/null
"$SIM" --benchmark ora --max-insts 5000 --scheduler roundrobin \
    --verify-ir --quiet >/dev/null
"$SIM" --benchmark ora --max-insts 5000 --scheduler multilevel \
    --verify-ir --quiet >/dev/null
"$SIM" --list-passes >/dev/null
"$SIM" --benchmark ora --max-insts 5000 --dump-after regalloc --quiet \
    >/dev/null

# Compile-cache invariant: the Table-2 campaign compiles each distinct
# (workload, compile-config) pair exactly once — 12 compiles for 18
# jobs, 6 shared.
SUMMARY="$("$BUILD/src/tools/mcarun" --table2 --scale 0.05 \
    --max-insts 20000 --jobs 4 --no-cache --quiet 2>&1 >/dev/null)"
echo "$SUMMARY" | grep -q "compiles: 12 (6 shared)" || {
    echo "ci.sh: compile-cache expected 'compiles: 12 (6 shared)', got:"
    echo "$SUMMARY"
    exit 1
}

# Simulator-throughput benchmark: Scan vs Event issue engine, recorded
# at the repo root for regression tracking (see EXPERIMENTS.md).
"$BUILD/bench/micro_perf" --json-out "$ROOT/BENCH_core.json"

# Compile-cache benchmark: Table-2 campaign wall clock with vs without
# compile sharing; fails if the cache does more than one compile per
# distinct config or perturbs any job result (see EXPERIMENTS.md).
"$BUILD/bench/campaign_compile" --json-out "$ROOT/BENCH_compile.json"

# N-cluster partitioning smokes: the --clusters machine selection with
# every partitioner at 4 clusters (verified IR), the Figure-6
# partitioner comparison, and a 4-cluster mcarun partitioner sweep.
for p in local roundrobin multilevel; do
    "$SIM" --benchmark ora --max-insts 5000 --clusters 4 \
        --partitioner "$p" --verify-ir --quiet >/dev/null
done
"$SIM" --benchmark ora --max-insts 5000 --clusters 8 \
    --partitioner multilevel --verify-ir --quiet >/dev/null
"$BUILD/bench/fig6_partitioning" >/dev/null
"$BUILD/src/tools/mcarun" --benchmarks compress --machines quad8 \
    --partitioners local,roundrobin,multilevel --schedulers native \
    --scale 0.05 --max-insts 20000 --jobs 4 --no-cache --no-table \
    --quiet >/dev/null

# Partition-quality benchmark: the cluster-count x partitioner sweep;
# fails unless the multilevel partitioner cuts no more affinity weight
# than round-robin on every workload and matches or beats the local
# scheduler's geomean IPC at 4 and 8 clusters (see EXPERIMENTS.md).
"$BUILD/bench/ablation_clusters" --jobs 4 \
    --json-out "$ROOT/BENCH_partition.json"

# Memory-hierarchy sensitivity smoke: the L2 x memory-latency grid over
# compress + su2cor; fails on a cycle-stack conservation violation, a
# dcache_l2 attribution without an L2, or a non-deterministic
# paper-mode corner (see docs/memory.md and EXPERIMENTS.md).
"$BUILD/bench/sensitivity_memory" --json-out "$ROOT/BENCH_mem.json"

# Hierarchy-flag smoke: an L2-equipped machine with finite fill ports
# runs end to end with conserved cycle stacks.
"$SIM" --benchmark compress --max-insts 5000 --l2-kb 256 --mem-lat 32 \
    --fill-ports 1 --cycle-stacks --quiet >/dev/null

# Checkpoint/restore smoke: a run resumed from a mid-run snapshot
# (--ckpt-out/--ckpt-at and --ckpt-every alike) must finish with stats
# bit-identical to an uninterrupted run (docs/sampling.md).
python3 scripts/check_ckpt.py "$SIM"

# Sampled-simulation smoke: the mcasim --sample path and the mcarun
# samplePeriods axis both run end to end.
"$SIM" --benchmark gcc1 --scale 1 \
    --sample "systematic:period=20000,detail=4000,warmup=1000" \
    --quiet >/dev/null
"$BUILD/src/tools/mcarun" --benchmarks compress \
    --sample-periods 0,20000 --scale 0.5 --max-insts 60000 \
    --no-cache --quiet >/dev/null

# Sampled-simulation benchmark: full detailed run vs SMARTS-style
# sampled estimate; fails unless one benchmark reaches a 10x effective
# speedup with <= 2% CPI error (see EXPERIMENTS.md).
"$BUILD/bench/sampled_speedup" --json-out "$ROOT/BENCH_sample.json"

# Host-profiler smoke (docs/profiling.md): a profiled gcc1 run must
# attribute >= 90% of its wall clock to regions, the report must
# render, and the diff mode must accept two real profiles. The sampled
# variant exercises the per-window Perfetto tracks and the
# multi-threaded profile merge.
"$SIM" --benchmark gcc1 --prof --prof-out /tmp/mca_ci_prof1.json \
    --quiet >/dev/null
python3 scripts/prof_report.py /tmp/mca_ci_prof1.json \
    --min-coverage 0.9 >/dev/null
"$SIM" --benchmark gcc1 --prof --prof-out /tmp/mca_ci_prof2.json \
    --sample "systematic:period=20000,detail=4000,warmup=1000,jobs=2" \
    --trace-out /tmp/mca_ci_prof_trace.json --quiet >/dev/null
python3 scripts/prof_report.py /tmp/mca_ci_prof2.json >/dev/null
python3 scripts/prof_report.py --diff /tmp/mca_ci_prof1.json \
    /tmp/mca_ci_prof2.json >/dev/null

# Campaign-telemetry smoke: the JSONL heartbeat must parse, count
# done = 1..total monotonically, and close with a consistent summary.
"$BUILD/src/tools/mcarun" --benchmarks compress,ora \
    --schedulers native,local --scale 0.05 --max-insts 20000 --jobs 2 \
    --no-cache --telemetry /tmp/mca_ci_telemetry.jsonl --no-table \
    --quiet >/dev/null 2>&1
python3 scripts/check_telemetry.py /tmp/mca_ci_telemetry.jsonl \
    --expect-total 4

# Throughput-regression gate: the fresh benches above vs the copies
# saved before regeneration.
python3 scripts/perf_gate.py "$PREV_BENCH" "$ROOT"
rm -rf "$PREV_BENCH"
