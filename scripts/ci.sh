#!/bin/sh
# Tier-1 verification, exactly as the project's canonical verify line:
# configure, build, and run the full test suite. Fails fast on the
# first broken step.
#
#   scripts/ci.sh [build-dir]
set -e

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
cd "$BUILD"
ctest --output-on-failure -j
