#!/bin/sh
# Tier-1 verification, exactly as the project's canonical verify line:
# configure, build, and run the full test suite. Fails fast on the
# first broken step.
#
#   scripts/ci.sh [build-dir]
set -e

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
cd "$BUILD"
ctest --output-on-failure -j

# Observability smoke: cycle stacks conserve and the Perfetto trace is
# loadable (scripts/check_trace.py validates both).
cd "$ROOT"
SIM="$BUILD/src/tools/mcasim"
"$SIM" --benchmark ora --max-insts 5000 --cycle-stacks --quiet \
    --trace-out /tmp/mca_ci_trace.json >/dev/null
"$SIM" --benchmark ora --max-insts 5000 --cycle-stacks --quiet --json \
    >/tmp/mca_ci_stats.json 2>/dev/null
python3 scripts/check_trace.py /tmp/mca_ci_trace.json \
    /tmp/mca_ci_stats.json
