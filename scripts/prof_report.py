#!/usr/bin/env python3
"""Render, check, and diff mcasim host profiles (docs/profiling.md).

The input is the JSON document written by `mcasim --prof-out FILE`: a
tree of regions, each with inclusive time (total_ns), exclusive time
(self_ns = total minus children), a call count, and optionally a block
of hardware-counter deltas. Three modes:

  prof_report.py PROFILE                  render the top-down tree
  prof_report.py PROFILE --min-coverage F coverage check (for CI)
  prof_report.py --diff OLD NEW           per-region comparison

Coverage is *self-attributed*: the scope timer design guarantees every
nanosecond between the first scope entry and the snapshot lands in
exactly one region's self time, so the instrumented fraction of the run
is root total_ns / wall_ns. With one thread that is <= 1; with worker
threads (sampled runs, campaigns) the numerator is summed CPU time and
legitimately exceeds the wall clock, so the check is a floor, never a
ceiling.

The diff mode keys regions by their full path, so a region that moved
in the tree shows as removed + added rather than silently comparing
different parents' children.

Exit status: 0 on success, 1 on a failed coverage check or a malformed
profile.
"""

import argparse
import json
import sys


def load_profile(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit("prof_report.py: cannot read %s: %s" % (path, e))
    for key in ("version", "wall_ns", "root"):
        if key not in doc:
            sys.exit("prof_report.py: %s: missing '%s' (not a "
                     "--prof-out file?)" % (path, key))
    return doc


def fmt_ms(ns):
    return "%.3f" % (ns / 1e6)


def walk(node, path=()):
    """Yield (path, node) depth-first; path excludes the root."""
    for child in node.get("children", []):
        child_path = path + (child["name"],)
        yield child_path, child
        yield from walk(child, child_path)


def render(doc, max_depth, min_pct):
    root = doc["root"]
    total = root.get("total_ns", 0)
    wall = doc.get("wall_ns", 0)
    hw = doc.get("hw_available", False)

    print("host profile: %s ms wall, %s ms in regions (%.1f%%), "
          "%d thread%s%s"
          % (fmt_ms(wall), fmt_ms(total),
             100.0 * total / wall if wall else 0.0,
             doc.get("threads", 0),
             "" if doc.get("threads", 0) == 1 else "s",
             ", hw counters" if hw else ""))
    header = "%-42s %10s %10s %9s %7s" % (
        "region", "total(ms)", "self(ms)", "calls", "%root")
    if hw:
        header += " %8s %12s" % ("ipc", "cache-miss")
    print(header)

    def emit(node, depth):
        if max_depth is not None and depth > max_depth:
            return
        pct = 100.0 * node.get("total_ns", 0) / total if total else 0.0
        if depth > 0 and pct < min_pct:
            return
        line = "%-42s %10s %10s %9d %6.1f%%" % (
            "  " * depth + node["name"],
            fmt_ms(node.get("total_ns", 0)),
            fmt_ms(node.get("self_ns", 0)),
            node.get("calls", 0), pct)
        counts = node.get("hw")
        if hw and counts and counts.get("cycles"):
            ipc = counts.get("instructions", 0) / counts["cycles"]
            line += " %8.2f %12d" % (ipc, counts.get("cache_misses", 0))
        print(line)
        for child in sorted(node.get("children", []),
                            key=lambda c: -c.get("total_ns", 0)):
            emit(child, depth + 1)

    emit(root, 0)


def check_coverage(doc, minimum, path):
    wall = doc.get("wall_ns", 0)
    total = doc["root"].get("total_ns", 0)
    coverage = total / wall if wall else 0.0
    verdict = "ok" if coverage >= minimum else "FAIL"
    print("coverage: %.1f%% of wall clock attributed to regions "
          "(minimum %.1f%%) %s"
          % (100.0 * coverage, 100.0 * minimum, verdict))
    if coverage < minimum:
        sys.exit("prof_report.py: %s: coverage %.3f below minimum %.3f"
                 % (path, coverage, minimum))


def diff(old_path, new_path):
    old_doc, new_doc = load_profile(old_path), load_profile(new_path)
    old = {p: n for p, n in walk(old_doc["root"])}
    new = {p: n for p, n in walk(new_doc["root"])}

    print("profile diff: %s (%s ms) -> %s (%s ms)"
          % (old_path, fmt_ms(old_doc["wall_ns"]),
             new_path, fmt_ms(new_doc["wall_ns"])))
    print("%-42s %10s %10s %8s %10s" % (
        "region", "old(ms)", "new(ms)", "delta", "calls"))

    rows = []
    for path in sorted(set(old) | set(new)):
        o, n = old.get(path), new.get(path)
        o_ns = o.get("total_ns", 0) if o else 0
        n_ns = n.get("total_ns", 0) if n else 0
        rows.append((abs(n_ns - o_ns), path, o, n, o_ns, n_ns))
    rows.sort(key=lambda r: (-r[0], r[1]))

    for _, path, o, n, o_ns, n_ns in rows:
        if o and n:
            delta = ("%+7.1f%%" % (100.0 * (n_ns - o_ns) / o_ns)
                     if o_ns else "   new")
            calls = "%d" % n.get("calls", 0)
            if o.get("calls") != n.get("calls"):
                calls = "%d->%d" % (o.get("calls", 0), n.get("calls", 0))
        elif n:
            delta, calls = "   added", "%d" % n.get("calls", 0)
        else:
            delta, calls = " removed", "%d" % o.get("calls", 0)
        print("%-42s %10s %10s %8s %10s" % (
            "  " * (len(path) - 1) + path[-1],
            fmt_ms(o_ns) if o else "-", fmt_ms(n_ns) if n else "-",
            delta, calls))


def main():
    parser = argparse.ArgumentParser(
        description="render / check / diff mcasim --prof-out profiles")
    parser.add_argument("profile", nargs="?",
                        help="profile JSON from mcasim --prof-out")
    parser.add_argument("--diff", nargs=2, metavar=("OLD", "NEW"),
                        help="compare two profiles region by region")
    parser.add_argument("--min-coverage", type=float, default=None,
                        metavar="FRAC",
                        help="fail unless root total / wall >= FRAC")
    parser.add_argument("--depth", type=int, default=None,
                        help="truncate the rendered tree at this depth")
    parser.add_argument("--min-pct", type=float, default=0.0,
                        help="hide regions below this %% of the root")
    args = parser.parse_args()

    if args.diff:
        if args.profile or args.min_coverage is not None:
            parser.error("--diff takes exactly two profiles and no "
                         "other mode")
        diff(*args.diff)
        return
    if not args.profile:
        parser.error("a profile file (or --diff OLD NEW) is required")

    doc = load_profile(args.profile)
    render(doc, args.depth, args.min_pct)
    if args.min_coverage is not None:
        check_coverage(doc, args.min_coverage, args.profile)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        sys.exit(0)  # output piped into head/less and closed early
