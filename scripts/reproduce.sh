#!/bin/sh
# Regenerate everything: build, test, and run every bench, capturing
# the outputs the repository's EXPERIMENTS.md numbers come from.
#
#   scripts/reproduce.sh [build-dir]
#
# Outputs: <build-dir>/../test_output.txt and bench_output.txt next to
# the repository root (the canonical artifact locations).
set -e

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee "$ROOT/test_output.txt"

: > "$ROOT/bench_output.txt"
for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "==================== $(basename "$b") ====================" \
        >> "$ROOT/bench_output.txt"
    "$b" >> "$ROOT/bench_output.txt" 2>&1
    echo >> "$ROOT/bench_output.txt"
done

# The Table-2 campaign through the parallel runner: sharded across
# every core, results cached under <build>/mcarun-cache (a rerun only
# simulates changed points), JSONL next to the other artifacts.
echo "==================== mcarun --table2 ====================" \
    >> "$ROOT/bench_output.txt"
"$BUILD"/src/tools/mcarun --table2 --scale 1.0 --max-insts 400000 \
    --jobs "$(nproc)" --cache "$BUILD/mcarun-cache" \
    --out "$ROOT/table2_results.jsonl" --quiet \
    >> "$ROOT/bench_output.txt" 2>&1
echo >> "$ROOT/bench_output.txt"

echo "done: test_output.txt, bench_output.txt, and table2_results.jsonl written"
