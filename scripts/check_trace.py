#!/usr/bin/env python3
"""Observability smoke check: validate an mcasim --trace-out file and
cross-check the cycle-stack totals in an mcasim --json stats dump.

    check_trace.py TRACE.json STATS.json
"""
import json
import sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
assert events, "trace has no events"
last = {}
for ev in (e for e in events if e["ph"] != "M"):
    track = (ev.get("pid", 0), ev.get("tid", 0))
    assert ev["ts"] >= last.get(track, 0), f"ts regressed on {track}"
    last[track] = ev["ts"]
assert any(e["ph"] == "X" for e in events), "no instruction slices"
assert any(e["ph"] == "C" for e in events), "no counter samples"

# The stats dump follows mcasim's one-line summary; skip to the object.
text = open(sys.argv[2]).read()
stats = json.loads(text[text.index("{"):])
causes = sum(v for k, v in stats.items()
             if k.startswith("cstack.") and k != "cstack.slots")
expect = stats["cstack.slots"] * stats["sim.cycles"]
assert causes == expect, f"cycle stack not conserved: {causes} != {expect}"
print(f"ok: {len(events)} events, {len(last)} tracks, "
      f"{causes} slot-cycles conserved")
