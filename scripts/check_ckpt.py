#!/usr/bin/env python3
"""Checkpoint/restore smoke test (run from scripts/ci.sh).

Exercises the mcasim checkpoint surface end to end and requires exact
state fidelity:

  1. an uninterrupted run records its stats JSON (the ground truth);
  2. the same run saves a mid-run snapshot with --ckpt-out/--ckpt-at;
  3. a run resumed from that snapshot with --ckpt-in must finish with
     stats bit-identical to the uninterrupted run;
  4. --ckpt-every writes a series of periodic snapshots, and resuming
     from the *last* one must again reproduce the ground truth.

Any stat drift means some piece of machine state escaped the
save/restore chain (see src/ckpt/ and docs/sampling.md).

Usage: check_ckpt.py MCASIM_BINARY
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

COMMON = [
    "--benchmark", "compress", "--max-insts", "8000",
    "--cycle-stacks", "--quiet", "--json",
]


def run_stats(sim, extra):
    """Run mcasim and return its stats dump as a parsed dict."""
    proc = subprocess.run(
        [sim] + COMMON + extra,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    if proc.returncode != 0:
        sys.exit("check_ckpt.py: mcasim failed (%s):\n%s"
                 % (" ".join(extra), proc.stderr))
    out = proc.stdout
    try:
        return json.loads(out[out.index("{"):])
    except ValueError:
        sys.exit("check_ckpt.py: no stats JSON in output of mcasim %s"
                 % " ".join(extra))


def expect_equal(name, baseline, resumed):
    if resumed == baseline:
        print("check_ckpt.py: %s: stats identical to uninterrupted run"
              % name)
        return
    diffs = [k for k in sorted(set(baseline) | set(resumed))
             if baseline.get(k) != resumed.get(k)]
    sys.exit("check_ckpt.py: %s: resumed stats differ from the "
             "uninterrupted run in: %s" % (name, ", ".join(diffs[:20])))


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    sim = sys.argv[1]

    with tempfile.TemporaryDirectory(prefix="mca_ckpt_") as tmp:
        tmp = Path(tmp)
        baseline = run_stats(sim, [])

        # Mid-run snapshot, then resume from it.
        snap = tmp / "mid.mck"
        run_stats(sim, ["--ckpt-out", str(snap), "--ckpt-at", "3000"])
        if not snap.exists():
            sys.exit("check_ckpt.py: --ckpt-out wrote no snapshot")
        expect_equal("ckpt-at", baseline, run_stats(
            sim, ["--ckpt-in", str(snap)]))

        # Periodic snapshots, then resume from the last one.
        run_stats(sim, ["--ckpt-every", "2500", "--ckpt-dir", str(tmp)])
        periodic = sorted(tmp.glob("ckpt_*.mck"))
        if len(periodic) < 2:
            sys.exit("check_ckpt.py: --ckpt-every 2500 wrote %d "
                     "snapshots, expected >= 2" % len(periodic))
        expect_equal("ckpt-every[%s]" % periodic[-1].name, baseline,
                     run_stats(sim, ["--ckpt-in", str(periodic[-1])]))

    print("check_ckpt.py: OK")


if __name__ == "__main__":
    main()
